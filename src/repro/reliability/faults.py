"""Deterministic, seedable fault injection for chaos testing.

A :class:`FaultPlan` is the single source of simulated trouble in the
runtime: the parallel scheduler asks it whether the next stratum task
should crash its worker, hang past the deadline, or fail; the SQLite
backend asks it whether the next statement should see a locked
database; :meth:`~repro.inference.horn.HornEngine.apply_batch` asks it
whether the process should "die" between journaling a diff and
applying it.  Every decision comes from a per-site
:class:`random.Random` stream derived from one seed, so a chaos run
replays bit-for-bit: same seed, same faults, same recovery path.

Fault *sites* (the strings the hooks draw on):

========================  ====================================================
``worker_crash``          the pool worker hard-exits mid-task (the parent
                          sees ``BrokenProcessPool``)
``task_hang``             the task sleeps ``hang_seconds`` before finishing
                          (trips the scheduler's per-task deadline)
``task_error``            the task raises — the stand-in for pickle/transport
                          failures, which surface to the parent identically
``task_slow``             the task sleeps ``slow_seconds`` but finishes in
                          time (exercises the happy path under load)
``sqlite_lock``           the next statement raises ``OperationalError:
                          database is locked`` before reaching SQLite
``batch_crash``           ``apply_batch`` aborts after the write-ahead
                          journal record, before mutating the engine
========================  ====================================================

Plans are either *rate-based* (each draw fires with probability
``rates[site]``) or *scripted* (draw numbers listed in
``script[site]`` fire, everything else does not); ``max_fires`` caps
the total fires per site so a hostile rate cannot starve a campaign
forever.  ``fired``/``draws`` counters make tests and the chaos
harness report injected trouble honestly.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import OnionError

__all__ = [
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "TaskFault",
]

FAULT_SITES = (
    "worker_crash",
    "task_hang",
    "task_error",
    "task_slow",
    "sqlite_lock",
    "batch_crash",
)


class FaultInjected(OnionError):
    """An injected fault fired (never raised outside chaos testing)."""


@dataclass(frozen=True, slots=True)
class TaskFault:
    """A picklable directive shipped inside a stratum-task payload.

    ``kind`` is ``crash`` / ``hang`` / ``error`` / ``slow``; ``seconds``
    is the sleep for the timed kinds.  The worker-side hook in
    :func:`repro.inference.horn._saturate_stratum_task` interprets it.
    """

    kind: str
    seconds: float = 0.0


class FaultPlan:
    """A seeded schedule of injected faults across the runtime.

    ``rates`` maps fault sites to per-draw probabilities; ``script``
    maps sites to the exact (0-based) draw indexes that fire and takes
    precedence over ``rates`` for the sites it names.  Unknown site
    names are rejected up front — a typoed site would otherwise be a
    chaos test that silently tests nothing.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        rates: Mapping[str, float] | None = None,
        script: Mapping[str, Iterable[int]] | None = None,
        hang_seconds: float = 0.25,
        slow_seconds: float = 0.01,
        max_fires: int | None = None,
    ) -> None:
        self.seed = seed
        self.rates = dict(rates or {})
        self.script = {
            site: frozenset(indexes)
            for site, indexes in (script or {}).items()
        }
        for site in (*self.rates, *self.script):
            if site not in FAULT_SITES:
                raise OnionError(
                    f"unknown fault site {site!r}; "
                    f"known sites: {', '.join(FAULT_SITES)}"
                )
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        self.max_fires = max_fires
        # Independent per-site streams: drawing at one site never
        # shifts another site's sequence, so adding a hook upstream
        # cannot silently reschedule every fault downstream.
        self._rngs = {
            site: random.Random(f"{seed}:{site}") for site in FAULT_SITES
        }
        self.draws: dict[str, int] = {site: 0 for site in FAULT_SITES}
        self.fired: dict[str, int] = {site: 0 for site in FAULT_SITES}

    @classmethod
    def scripted(
        cls, script: Mapping[str, Iterable[int]], **kwargs: object
    ) -> "FaultPlan":
        """A plan that fires exactly the listed draws and nothing else."""
        return cls(script=script, **kwargs)  # type: ignore[arg-type]

    def fire(self, site: str) -> bool:
        """Consume one draw at ``site``; True when the fault fires."""
        if site not in FAULT_SITES:
            raise OnionError(f"unknown fault site {site!r}")
        index = self.draws[site]
        self.draws[site] = index + 1
        if site in self.script:
            fires = index in self.script[site]
        else:
            rate = self.rates.get(site, 0.0)
            # the stream advances even when it cannot fire, so the
            # schedule is a pure function of (seed, draw index)
            fires = self._rngs[site].random() < rate if rate > 0 else False
        if fires and (
            self.max_fires is not None
            and self.fired[site] >= self.max_fires
        ):
            fires = False
        if fires:
            self.fired[site] = self.fired[site] + 1
        return fires

    # ------------------------------------------------------------------
    # the hooks the runtime draws on
    # ------------------------------------------------------------------
    def task_fault(self) -> TaskFault | None:
        """The directive for the next dispatched stratum task, if any.

        At most one fault per task; sites are consulted in severity
        order and each consumes its own draw.
        """
        if self.fire("worker_crash"):
            return TaskFault("crash")
        if self.fire("task_hang"):
            return TaskFault("hang", self.hang_seconds)
        if self.fire("task_error"):
            return TaskFault("error")
        if self.fire("task_slow"):
            return TaskFault("slow", self.slow_seconds)
        return None

    def sqlite_fault(self) -> bool:
        """Should the next SQLite statement see a locked database?"""
        return self.fire("sqlite_lock")

    def batch_crash(self) -> bool:
        """Should ``apply_batch`` die after journaling, before mutating?"""
        return self.fire("batch_crash")

    def summary(self) -> dict[str, dict[str, int]]:
        """Non-zero draw/fire counters, for reports and assertions."""
        return {
            "draws": {s: n for s, n in self.draws.items() if n},
            "fired": {s: n for s, n in self.fired.items() if n},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fired = sum(self.fired.values())
        return (
            f"<FaultPlan seed={self.seed} fired={fired} "
            f"rates={self.rates} script="
            f"{ {s: sorted(v) for s, v in self.script.items()} }>"
        )
