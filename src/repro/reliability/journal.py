"""A write-ahead journal making batched churn crash-safe.

:meth:`~repro.inference.horn.HornEngine.apply_batch` with a journal
attached records the coalesced shrink+grow diff durably *before*
touching the engine, and marks it committed once the batch reached its
fixpoint.  A process that dies anywhere in between loses only volatile
state: :meth:`ChurnJournal.recover` folds the last snapshot plus every
journaled batch — committed or not — back into a fresh engine and
saturates it, landing exactly on the fixpoint the interrupted batch
was driving toward.  The DB-nets line of work grounds the semantics:
a batch is a transaction whose effects either fully appear (the begin
record is durable, so recovery replays it) or never started (the
record never made it to disk, so the base state stands).

The journal is a JSON-lines file with three record types::

    {"type": "snapshot", "facts": [...], "clauses": [...]}
    {"type": "begin", "seq": N, "adds": [...], "retracts": [...]}
    {"type": "commit", "seq": N}

Every append is flushed and fsynced before ``apply_batch`` proceeds.
Reads tolerate a torn tail — a half-written last line (the crash
happened mid-append) is discarded, which is the correct transactional
outcome: an un-durable begin record is a batch that never happened.
The next append *truncates* that torn tail before writing (rather
than sealing it into the file with a newline), which keeps the format
unambiguous: an undecodable line **followed by valid records** can
only mean genuine mid-file corruption (disk rot, a compaction crash
racing an append).  Reads then trust only the contiguous prefix —
replaying diffs on top of a hole would apply them to the wrong base —
surface the dropped record count as ``truncated_records``, and
compact the file back to the trusted prefix so later appends land on
clean ground.  :meth:`snapshot` compacts the file (atomically, via
rename) so long campaigns do not replay their entire history on
recovery.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import OnionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.inference.horn import Atom, HornEngine

__all__ = ["ChurnJournal", "JournalError"]


class JournalError(OnionError):
    """The churn journal is unusable (bad record shape, bad path)."""


def _atom_to_json(atom: "Atom") -> list[str]:
    return list(atom)


def _atom_from_json(parts: object) -> "Atom":
    if not isinstance(parts, list) or not all(
        isinstance(p, str) for p in parts
    ):
        raise JournalError(f"malformed atom in journal: {parts!r}")
    return tuple(parts)


def _clause_to_json(clause) -> dict[str, object]:
    return {
        "head": list(clause.head),
        "body": [list(atom) for atom in clause.body],
    }


def _clause_from_json(payload: object):
    from repro.core.rules import HornClause

    if not isinstance(payload, dict):
        raise JournalError(f"malformed clause in journal: {payload!r}")
    head = _atom_from_json(payload.get("head"))
    body = payload.get("body")
    if not isinstance(body, list):
        raise JournalError(f"malformed clause body in journal: {payload!r}")
    return HornClause(head, tuple(_atom_from_json(atom) for atom in body))


class ChurnJournal:
    """Durable intent log for :meth:`HornEngine.apply_batch` diffs."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._next_seq = 1
        records, truncated = self._scan()
        #: records dropped because they followed mid-file corruption
        #: (0 for a clean file or a merely torn tail)
        self.truncated_records = truncated
        if truncated:
            # Compact to the trusted prefix now: without this, every
            # *future* append would also sit after the corruption and
            # be unreadable to the next open.
            self._rewrite(records)
        for record in records:
            if record.get("type") == "begin":
                seq = record.get("seq")
                if isinstance(seq, int) and seq >= self._next_seq:
                    self._next_seq = seq + 1

    # ------------------------------------------------------------------
    # the durable write path
    # ------------------------------------------------------------------
    def _append(self, record: dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True)
        self._heal_torn_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _heal_torn_tail(self) -> None:
        """Cut off a half-written final line before appending.

        The torn line was never durable, so removing it is sound and
        idempotent.  Truncating (instead of sealing the garbage in
        with a newline) is what keeps mid-file corruption detectable:
        in a healthy journal no valid record ever follows an
        undecodable line.
        """
        try:
            with open(self.path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                data = handle.read()
                handle.truncate(data.rfind(b"\n") + 1)
                handle.flush()
                os.fsync(handle.fileno())
        except FileNotFoundError:
            return

    def begin(
        self, adds: list["Atom"], retracts: list["Atom"]
    ) -> int:
        """Durably record a batch's full diff; returns its sequence id."""
        seq = self._next_seq
        self._next_seq += 1
        self._append(
            {
                "type": "begin",
                "seq": seq,
                "adds": [_atom_to_json(a) for a in adds],
                "retracts": [_atom_to_json(a) for a in retracts],
            }
        )
        return seq

    def commit(self, seq: int) -> None:
        """Mark a journaled batch as fully applied (fixpoint reached)."""
        self._append({"type": "commit", "seq": seq})

    def snapshot(self, engine: "HornEngine") -> None:
        """Compact: replace the log with the engine's current program.

        Atomic (write-temp-then-rename), so a crash mid-snapshot leaves
        the previous journal intact.  Call after a batch commits; the
        snapshot plus later records fully determine the engine.
        """
        self.snapshot_state(engine.base_facts(), engine.clauses())

    def snapshot_state(self, facts, clauses=()) -> int:
        """Compact to an explicit ``(facts, clauses)`` program.

        The engine-free flavor of :meth:`snapshot`, used by the bulk
        ingest path — a just-loaded fact base has no engine yet, but
        recovery must still find one snapshot that fully determines
        it.  Returns the number of facts written.
        """
        atoms = sorted(facts)
        record = {
            "type": "snapshot",
            "facts": [_atom_to_json(a) for a in atoms],
            "clauses": [_clause_to_json(c) for c in clauses],
        }
        self._rewrite([record])
        return len(atoms)

    def _rewrite(self, records: list[dict[str, object]]) -> None:
        """Atomically replace the file with exactly these records."""
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    # ------------------------------------------------------------------
    # reading the log back
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[dict[str, object]], int]:
        """(contiguous-prefix records, records dropped after corruption).

        Only the prefix before the first undecodable line is trusted:
        diffs are replayed in order onto the state the earlier records
        built, so a record *after* a hole would be applied to the
        wrong base.  A torn tail — garbage with nothing decodable
        after it — drops silently (count 0): that record was never
        durable, so nothing was lost.
        """
        records: list[dict[str, object]] = []
        truncated = 0
        corrupted = False
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records, truncated
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupted = True
                continue
            if not (
                isinstance(record, dict)
                and isinstance(record.get("type"), str)
            ):
                corrupted = True
                continue
            if corrupted:
                truncated += 1  # durable but unreachable: after a hole
                continue
            records.append(record)
        return records, truncated

    def _load(self) -> list[dict[str, object]]:
        """The trusted (contiguous-prefix) records, in order."""
        records, _ = self._scan()
        return records

    def records(self) -> list[dict[str, object]]:
        return self._load()

    def pending(self) -> list[int]:
        """Sequence ids journaled but never committed (crash victims)."""
        begun: list[int] = []
        committed: set[int] = set()
        for record in self._load():
            if record.get("type") == "begin":
                begun.append(int(record["seq"]))  # type: ignore[arg-type]
            elif record.get("type") == "commit":
                committed.add(int(record["seq"]))  # type: ignore[arg-type]
        return [seq for seq in begun if seq not in committed]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, **engine_kwargs: object) -> tuple["HornEngine", dict]:
        """Rebuild an engine at the journal's last consistent fixpoint.

        Folds the latest snapshot and every durable batch — committed
        and pending alike; a durable begin record is a promise the diff
        survives the crash — into a fresh :class:`HornEngine`
        (constructed with ``engine_kwargs``, e.g. ``workers=4``),
        saturates it, then commits the replayed pending batches so a
        second recovery is a no-op.  Returns the engine and a report:
        ``batches`` (diffs folded), ``replayed_pending`` (how many were
        crash victims), ``facts`` (base facts after the fold), and
        ``truncated_records`` (durable records dropped because they
        sat beyond mid-file corruption — recovery stops at the last
        contiguous prefix).
        """
        from repro.inference.horn import HornEngine

        records, truncated = self._scan()
        if truncated:
            # same healing as __init__: make the surviving prefix the
            # whole file so later appends stay readable
            self._rewrite(records)
            self.truncated_records = truncated

        facts: set[Atom] = set()
        clauses: list = []
        batches = 0
        committed: set[int] = set()
        begun: list[int] = []
        for record in records:
            kind = record.get("type")
            if kind == "snapshot":
                facts = {
                    _atom_from_json(a) for a in record.get("facts", [])
                }
                clauses = [
                    _clause_from_json(c)
                    for c in record.get("clauses", [])
                ]
                batches = 0
                committed.clear()
                begun.clear()
            elif kind == "begin":
                batches += 1
                begun.append(int(record["seq"]))  # type: ignore[arg-type]
                # retract-then-add: the order apply_batch applies diffs
                for atom in record.get("retracts", []):
                    facts.discard(_atom_from_json(atom))
                for atom in record.get("adds", []):
                    facts.add(_atom_from_json(atom))
            elif kind == "commit":
                committed.add(int(record["seq"]))  # type: ignore[arg-type]
        engine = HornEngine(journal=self, **engine_kwargs)  # type: ignore[arg-type]
        engine.add_clauses(clauses)
        engine.add_facts(sorted(facts))
        engine.saturate()
        pending = [seq for seq in begun if seq not in committed]
        for seq in pending:
            self.commit(seq)
        return engine, {
            "batches": batches,
            "replayed_pending": len(pending),
            "facts": len(facts),
            "truncated_records": self.truncated_records,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChurnJournal path={str(self.path)!r}>"
