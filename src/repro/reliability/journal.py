"""A write-ahead journal making batched churn crash-safe.

:meth:`~repro.inference.horn.HornEngine.apply_batch` with a journal
attached records the coalesced shrink+grow diff durably *before*
touching the engine, and marks it committed once the batch reached its
fixpoint.  A process that dies anywhere in between loses only volatile
state: :meth:`ChurnJournal.recover` folds the last snapshot plus every
journaled batch — committed or not — back into a fresh engine and
saturates it, landing exactly on the fixpoint the interrupted batch
was driving toward.  The DB-nets line of work grounds the semantics:
a batch is a transaction whose effects either fully appear (the begin
record is durable, so recovery replays it) or never started (the
record never made it to disk, so the base state stands).

The journal is a JSON-lines file with three record types::

    {"type": "snapshot", "facts": [...], "clauses": [...]}
    {"type": "begin", "seq": N, "adds": [...], "retracts": [...]}
    {"type": "commit", "seq": N}

Every append is flushed and fsynced before ``apply_batch`` proceeds.
Reads tolerate a torn tail — a half-written last line (the crash
happened mid-append) is discarded, which is the correct transactional
outcome: an un-durable begin record is a batch that never happened.
:meth:`snapshot` compacts the file (atomically, via rename) so long
campaigns do not replay their entire history on recovery.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import OnionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.inference.horn import Atom, HornEngine

__all__ = ["ChurnJournal", "JournalError"]


class JournalError(OnionError):
    """The churn journal is unusable (bad record shape, bad path)."""


def _atom_to_json(atom: "Atom") -> list[str]:
    return list(atom)


def _atom_from_json(parts: object) -> "Atom":
    if not isinstance(parts, list) or not all(
        isinstance(p, str) for p in parts
    ):
        raise JournalError(f"malformed atom in journal: {parts!r}")
    return tuple(parts)


def _clause_to_json(clause) -> dict[str, object]:
    return {
        "head": list(clause.head),
        "body": [list(atom) for atom in clause.body],
    }


def _clause_from_json(payload: object):
    from repro.core.rules import HornClause

    if not isinstance(payload, dict):
        raise JournalError(f"malformed clause in journal: {payload!r}")
    head = _atom_from_json(payload.get("head"))
    body = payload.get("body")
    if not isinstance(body, list):
        raise JournalError(f"malformed clause body in journal: {payload!r}")
    return HornClause(head, tuple(_atom_from_json(atom) for atom in body))


class ChurnJournal:
    """Durable intent log for :meth:`HornEngine.apply_batch` diffs."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._next_seq = 1
        for record in self._load():
            if record.get("type") == "begin":
                seq = record.get("seq")
                if isinstance(seq, int) and seq >= self._next_seq:
                    self._next_seq = seq + 1

    # ------------------------------------------------------------------
    # the durable write path
    # ------------------------------------------------------------------
    def _append(self, record: dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            # a torn previous append must not merge into this record
            if handle.tell() and not self._ends_with_newline():
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _ends_with_newline(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except (OSError, ValueError):
            return True

    def begin(
        self, adds: list["Atom"], retracts: list["Atom"]
    ) -> int:
        """Durably record a batch's full diff; returns its sequence id."""
        seq = self._next_seq
        self._next_seq += 1
        self._append(
            {
                "type": "begin",
                "seq": seq,
                "adds": [_atom_to_json(a) for a in adds],
                "retracts": [_atom_to_json(a) for a in retracts],
            }
        )
        return seq

    def commit(self, seq: int) -> None:
        """Mark a journaled batch as fully applied (fixpoint reached)."""
        self._append({"type": "commit", "seq": seq})

    def snapshot(self, engine: "HornEngine") -> None:
        """Compact: replace the log with the engine's current program.

        Atomic (write-temp-then-rename), so a crash mid-snapshot leaves
        the previous journal intact.  Call after a batch commits; the
        snapshot plus later records fully determine the engine.
        """
        record = {
            "type": "snapshot",
            "facts": [
                _atom_to_json(a) for a in sorted(engine.base_facts())
            ],
            "clauses": [_clause_to_json(c) for c in engine.clauses()],
        }
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    # ------------------------------------------------------------------
    # reading the log back
    # ------------------------------------------------------------------
    def _load(self) -> list[dict[str, object]]:
        """Every decodable record, in order; torn/garbage lines skipped."""
        records: list[dict[str, object]] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append: the batch never became durable
            if isinstance(record, dict) and isinstance(
                record.get("type"), str
            ):
                records.append(record)
        return records

    def records(self) -> list[dict[str, object]]:
        return self._load()

    def pending(self) -> list[int]:
        """Sequence ids journaled but never committed (crash victims)."""
        begun: list[int] = []
        committed: set[int] = set()
        for record in self._load():
            if record.get("type") == "begin":
                begun.append(int(record["seq"]))  # type: ignore[arg-type]
            elif record.get("type") == "commit":
                committed.add(int(record["seq"]))  # type: ignore[arg-type]
        return [seq for seq in begun if seq not in committed]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, **engine_kwargs: object) -> tuple["HornEngine", dict]:
        """Rebuild an engine at the journal's last consistent fixpoint.

        Folds the latest snapshot and every durable batch — committed
        and pending alike; a durable begin record is a promise the diff
        survives the crash — into a fresh :class:`HornEngine`
        (constructed with ``engine_kwargs``, e.g. ``workers=4``),
        saturates it, then commits the replayed pending batches so a
        second recovery is a no-op.  Returns the engine and a report:
        ``batches`` (diffs folded), ``replayed_pending`` (how many were
        crash victims), ``facts`` (base facts after the fold).
        """
        from repro.inference.horn import HornEngine

        facts: set[Atom] = set()
        clauses: list = []
        batches = 0
        committed: set[int] = set()
        begun: list[int] = []
        for record in self._load():
            kind = record.get("type")
            if kind == "snapshot":
                facts = {
                    _atom_from_json(a) for a in record.get("facts", [])
                }
                clauses = [
                    _clause_from_json(c)
                    for c in record.get("clauses", [])
                ]
                batches = 0
                committed.clear()
                begun.clear()
            elif kind == "begin":
                batches += 1
                begun.append(int(record["seq"]))  # type: ignore[arg-type]
                # retract-then-add: the order apply_batch applies diffs
                for atom in record.get("retracts", []):
                    facts.discard(_atom_from_json(atom))
                for atom in record.get("adds", []):
                    facts.add(_atom_from_json(atom))
            elif kind == "commit":
                committed.add(int(record["seq"]))  # type: ignore[arg-type]
        engine = HornEngine(journal=self, **engine_kwargs)  # type: ignore[arg-type]
        engine.add_clauses(clauses)
        engine.add_facts(sorted(facts))
        engine.saturate()
        pending = [seq for seq in begun if seq not in committed]
        for seq in pending:
            self.commit(seq)
        return engine, {
            "batches": batches,
            "replayed_pending": len(pending),
            "facts": len(facts),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChurnJournal path={str(self.path)!r}>"
