"""Retry/timeout policy for the fault-tolerant runtime.

One small value object shared by every component that retries —
the parallel stratum scheduler, the SQLite backend's locked-database
loop, and anything a future serving layer adds.  Delays are fully
deterministic (exponential, capped, no jitter) so chaos tests replay
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OnionError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "SQLITE_RETRY_POLICY"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How often, how long, and how patiently to retry.

    ``max_retries`` bounds *re*-attempts: an operation runs at most
    ``max_retries + 1`` times before the caller falls back (the
    scheduler degrades to a serial in-process run, the SQLite backend
    re-raises).  ``task_timeout`` is the per-task wall-clock budget in
    seconds — ``None`` disables deadline tracking entirely, restoring
    the wait-forever behavior.  ``respawn_on_timeout`` controls
    whether a timed-out (possibly hung) worker pool is torn down and
    respawned, or left to finish while the task is retried elsewhere.
    """

    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    task_timeout: float | None = 30.0
    respawn_on_timeout: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise OnionError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise OnionError("backoff delays must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise OnionError(
                f"task_timeout must be positive or None, "
                f"got {self.task_timeout!r}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-attempt ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0**attempt))


DEFAULT_RETRY_POLICY = RetryPolicy()
"""Scheduler default: 2 retries, 10ms doubling backoff, 30s timeout."""

SQLITE_RETRY_POLICY = RetryPolicy(
    max_retries=4,
    backoff_base=0.005,
    backoff_cap=0.1,
    task_timeout=None,
)
"""Backend default: more, shorter retries; SQLite's own busy_timeout
already absorbs sub-second lock contention, so this loop only sees
errors that outlived it."""
