"""Knowledge bases: instance stores behind the source wrappers.

Storage itself is pluggable (see :mod:`repro.kb.backends`): the store
validates against an ontology and expands subclass closure, while a
backend — in-memory or SQLite — holds the rows and answers streaming
scans with pushed-down filters and projections.
"""

from repro.kb.backends import (
    BACKENDS,
    InMemoryBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from repro.kb.instances import Instance, InstanceStore

__all__ = [
    "BACKENDS",
    "InMemoryBackend",
    "Instance",
    "InstanceStore",
    "SQLiteBackend",
    "StorageBackend",
    "create_backend",
]
