"""Knowledge bases: instance stores behind the source wrappers."""

from repro.kb.instances import Instance, InstanceStore

__all__ = ["Instance", "InstanceStore"]
