"""Knowledge bases: instance stores behind the source wrappers.

Storage itself is pluggable (see :mod:`repro.kb.backends`): the store
validates against an ontology and expands subclass closure, while a
backend — in-memory or SQLite — holds the rows and answers streaming
scans with pushed-down filters and projections.

The out-of-core layer lives here too: :mod:`repro.kb.pagestore` is
the disk-backed ``FactStore`` twin the inference engines select with
``storage="paged"``, and :mod:`repro.kb.ingest` is the bulk ETL path
that fills its databases at ``executemany`` speed.
"""

from repro.kb.backends import (
    BACKENDS,
    InMemoryBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from repro.kb.ingest import ingest_facts, iter_fact_file
from repro.kb.instances import Instance, InstanceStore
from repro.kb.pagestore import LabelSpillCache, PagedFactStore

__all__ = [
    "BACKENDS",
    "InMemoryBackend",
    "Instance",
    "InstanceStore",
    "LabelSpillCache",
    "PagedFactStore",
    "SQLiteBackend",
    "StorageBackend",
    "create_backend",
    "ingest_facts",
    "iter_fact_file",
]
