"""In-memory storage backend, extracted from ``InstanceStore``.

Keeps the store's original two indexes — instances by id and ids by
class — and adds an equality index (attribute, value) -> ids that
accelerates pushed ``=`` conditions, the common case for articulation
queries over categorical attributes (``model = T800``).

Scans yield in ascending ``instance_id`` order: the id set for the
requested classes is unioned (cheap — ids only, never rows) and
sorted, so the streaming executor can merge per-source streams without
re-sorting materialized results.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator

from repro.kb.backends.base import ScanStats, StorageBackend, matches_conditions
from repro.kb.instances import Instance

__all__ = ["InMemoryBackend"]

_EQ_OPS = frozenset({"=", "=="})


def _indexable(value: object) -> bool:
    """Only hash-stable scalars enter the equality index."""
    return isinstance(value, (str, int, float, bool)) or value is None


class InMemoryBackend(StorageBackend):
    """Dict-and-set storage with class and attribute-equality indexes."""

    ordered = True
    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._instances: dict[str, Instance] = {}
        self._by_class: dict[str, set[str]] = defaultdict(set)
        self._by_attr: dict[tuple[str, object], set[str]] = defaultdict(set)
        # ids whose value for an attribute is NOT in the equality index
        # (unhashable or exotic types); scans must keep them as
        # candidates because such a value can still compare equal.
        self._unindexed: dict[str, set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, instance: Instance) -> None:
        # upsert semantics, matching SQLite's INSERT OR REPLACE: an
        # existing row's index entries must not survive the overwrite
        if instance.instance_id in self._instances:
            self.delete(instance.instance_id)
        self._instances[instance.instance_id] = instance
        self._by_class[instance.cls].add(instance.instance_id)
        for name, value in instance.attributes.items():
            if _indexable(value):
                self._by_attr[(name, value)].add(instance.instance_id)
            else:
                self._unindexed[name].add(instance.instance_id)

    def delete(self, instance_id: str) -> Instance | None:
        instance = self._instances.pop(instance_id, None)
        if instance is None:
            return None
        self._by_class[instance.cls].discard(instance_id)
        for name, value in instance.attributes.items():
            if _indexable(value):
                self._by_attr[(name, value)].discard(instance_id)
            else:
                self._unindexed[name].discard(instance_id)
        return instance

    def clear(self) -> None:
        self._instances.clear()
        self._by_class.clear()
        self._by_attr.clear()
        self._unindexed.clear()

    # ------------------------------------------------------------------
    # point reads
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> Instance | None:
        return self._instances.get(instance_id)

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def classes(self) -> set[str]:
        return {cls for cls, ids in self._by_class.items() if ids}

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------
    def _candidate_ids(
        self, classes: Iterable[str], conditions: tuple
    ) -> tuple[set[str], int]:
        """Ids matching the class filter, narrowed through the equality
        index when a pushed ``=`` condition allows it.  Returns the
        candidate set and how many conditions the index accelerated;
        every condition is still re-checked row-by-row."""
        ids: set[str] = set()
        for cls in classes:
            ids |= self._by_class.get(cls, set())
        indexed = 0
        for condition in conditions:
            if condition.op in _EQ_OPS and _indexable(condition.value):
                # Narrow, never prove: candidates are the exact-value
                # bucket plus every id whose value for this attribute
                # escaped the index; evaluate() below stays the judge
                # of membership (so True==1 style aliasing is safe).
                bucket = self._by_attr.get(
                    (condition.attribute, condition.value), set()
                )
                ids &= bucket | self._unindexed.get(
                    condition.attribute, set()
                )
                indexed += 1
        return ids, indexed

    def scan(
        self,
        classes: Iterable[str],
        *,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        self.stats.scans += 1
        if attrs:
            self.stats.projected_scans += 1
        candidates, indexed = self._candidate_ids(tuple(classes), conditions)
        self.stats.conditions_pushed += indexed
        self.stats.conditions_python += len(conditions)
        for instance_id in sorted(candidates):
            instance = self._instances[instance_id]
            if conditions and not matches_conditions(instance, conditions):
                continue
            if predicate is not None and not predicate(instance):
                continue
            self.stats.rows_yielded += 1
            yield instance
