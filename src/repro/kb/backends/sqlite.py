"""SQLite storage backend: persistent instances with SQL pushdown.

Instances live in one table — ``instances(instance_id, cls, data)``
with attributes as a JSON document — indexed by class.  A scan becomes
one SQL statement and three things are pushed into it:

* **class filters** — ``cls IN (...)`` over the index;
* **predicates** — structured conditions compile to ``json_extract``
  comparisons guarded by ``json_type`` so SQL's affinity rules cannot
  diverge from Python's semantics (a numeric range predicate never
  matches a text value, exactly like ``Condition.evaluate`` returning
  False on a ``TypeError``); conditions that cannot be translated
  faithfully (bool/None constants, exotic attribute names, NaN) are
  evaluated in Python after the fetch — parity first, pushdown second;
* **projections** — when the caller promises to read only some
  attributes, only those JSON paths are extracted (``data -> '$.attr'``
  keeps arrays/objects intact), so wide instances never cross the SQL
  boundary.

Rows come back ``ORDER BY instance_id``, so the backend is ``ordered``
and the streaming executor can concatenate per-source streams without
a final sort.
"""

from __future__ import annotations

import json
import math
import re
import sqlite3
import threading
import time
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.errors import KnowledgeBaseError
from repro.kb.backends.base import StorageBackend, matches_conditions
from repro.kb.instances import Instance
from repro.reliability.faults import FaultPlan
from repro.reliability.policy import SQLITE_RETRY_POLICY, RetryPolicy

__all__ = ["SQLiteBackend", "condition_to_sql"]

# OperationalError messages that mean "try again", not "give up":
# another connection holds the lock (or the shared cache is busy).
_LOCKED_MARKERS = ("locked", "busy")


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return any(marker in message for marker in _LOCKED_MARKERS)

# Attribute names are stored lowercase; only plain identifiers are
# interpolated into JSON paths (everything else falls back to Python).
_SAFE_ATTR = re.compile(r"^[a-z0-9_]+$")

# The `->` JSON operator needs SQLite >= 3.38; older builds fall back
# to fetching the full document (predicates still push via
# json_extract, which is far older).
_HAS_JSON_ARROW = sqlite3.sqlite_version_info >= (3, 38, 0)

_RANGE_OPS = frozenset({"<", "<=", ">", ">="})
_EQ_OPS = frozenset({"=", "=="})


def condition_to_sql(condition) -> tuple[str, list[object]] | None:
    """Compile one :class:`~repro.query.ast.Condition` to a SQL
    fragment over the ``data`` JSON column, or None when a faithful
    translation does not exist (the caller then evaluates in Python).
    """
    attr = condition.attribute
    if not _SAFE_ATTR.match(attr):
        return None
    value = condition.value
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, float) and not math.isfinite(value):
        return None
    # sqlite3 cannot bind ints outside the signed 64-bit range
    if isinstance(value, int) and not -(2**63) <= value < 2**63:
        return None
    path = f'$."{attr}"'
    extract = f"json_extract(data, '{path}')"
    jtype = f"json_type(data, '{path}')"
    op = condition.op
    if isinstance(value, (int, float)):
        if op in _EQ_OPS:
            return f"{extract} = ?", [value]
        if op == "!=":
            return f"{extract} != ?", [value]
        if op in _RANGE_OPS:
            # json booleans compare as ints, matching Python bool<int;
            # text/array/object values fail, matching the TypeError ->
            # False contract of Condition.evaluate.
            return (
                f"({jtype} IN ('integer','real','true','false') "
                f"AND {extract} {op} ?)",
                [value],
            )
        return None
    if isinstance(value, str):
        if op in _EQ_OPS:
            # json_extract renders arrays as text ('[1]'); the type
            # guard keeps them from colliding with string constants.
            return f"({jtype} = 'text' AND {extract} = ?)", [value]
        if op == "!=":
            # 'null' is a stored JSON null: Python sees None and fails
            # every predicate, so SQL must exclude it too.
            return (
                f"({jtype} IS NOT NULL AND {jtype} != 'null' "
                f"AND ({jtype} != 'text' OR {extract} != ?))",
                [value],
            )
        if op in _RANGE_OPS:
            return f"({jtype} = 'text' AND {extract} {op} ?)", [value]
    return None


class SQLiteBackend(StorageBackend):
    """Instances persisted in SQLite (a file path or ``:memory:``).

    **Threading.** The backend is safe to share across threads — the
    serving tier scans one store from many request threads — with two
    connection regimes:

    * **file databases** get one connection *per thread*
      (thread-local, created on first use), so concurrent readers run
      genuinely in parallel on independent connections and SQLite's
      own file locking (plus the ``busy_timeout``/retry ladder)
      arbitrates writers;
    * **``:memory:``** cannot do that — each new connection to
      ``:memory:`` is a *different* empty database — so all threads
      share the one connection, serialized by an RLock held across
      each statement (and across a whole :meth:`bulk` transaction).

    Connections are opened with ``check_same_thread=False`` so
    :meth:`close` can retire every thread's connection from whichever
    thread tears the store down.
    """

    ordered = True
    kind = "sqlite"

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        busy_timeout_ms: int = 5000,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        super().__init__()
        self.path = str(path)
        self._retry = retry_policy or SQLITE_RETRY_POLICY
        self._fault_plan = fault_plan
        self._busy_timeout_ms = int(busy_timeout_ms)
        #: locked-database retries performed (observability/tests)
        self.lock_retries = 0
        self._memory = self.path == ":memory:"
        # guards the shared :memory: connection; re-entrant so bulk()
        # can hold it across the statements it issues
        self._conn_lock = threading.RLock()
        self._local = threading.local()
        self._conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self._closed = False
        self._shared_conn: sqlite3.Connection | None = None
        if self._memory:
            self._shared_conn = self._connect()
        self._create_schema()
        #: last executed scan SQL, for explain/debugging/tests
        self.last_sql: str | None = None

    def _create_schema(self) -> None:
        self._execute(
            "CREATE TABLE IF NOT EXISTS instances ("
            " instance_id TEXT PRIMARY KEY,"
            " cls TEXT NOT NULL,"
            " data TEXT NOT NULL)"
        )
        self._execute(
            "CREATE INDEX IF NOT EXISTS idx_instances_cls"
            " ON instances (cls)"
        )

    def _connect(self) -> sqlite3.Connection:
        if self._closed:
            raise sqlite3.ProgrammingError(
                "Cannot operate on a closed database."
            )
        # autocommit: every mutation is durable immediately; bulk()
        # wraps loads in one transaction.
        conn = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        # first line of defence: SQLite itself waits out a writer
        # before surfacing "database is locked"; the _execute retry
        # loop is the second, for busy shared caches and injected
        # faults that the pragma cannot absorb.
        conn.execute(f"PRAGMA busy_timeout = {self._busy_timeout_ms}")
        with self._conns_lock:
            self._conns.append(conn)
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        """This thread's connection (the shared one for ``:memory:``)."""
        if self._shared_conn is not None:
            return self._shared_conn
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._local.conn = conn
        return conn

    def _execute(self, sql: str, params: tuple | list = ()) -> sqlite3.Cursor:
        """Execute with bounded backoff-retry on transient lock errors.

        Non-lock OperationalErrors (and every other exception) raise
        immediately; a lock that outlives ``max_retries`` attempts
        raises the final OperationalError unchanged.
        """
        inject = (
            self._fault_plan is not None and self._fault_plan.sqlite_fault()
        )
        attempt = 0
        while True:
            try:
                if inject:
                    # one transient failure, handled by the very same
                    # retry path a real contended database would take
                    inject = False
                    raise sqlite3.OperationalError(
                        "database is locked (injected)"
                    )
                if self._shared_conn is not None:
                    # one statement at a time on the shared :memory:
                    # connection; per-thread file connections need no
                    # lock at all
                    with self._conn_lock:
                        return self._conn.execute(sql, params)
                return self._conn.execute(sql, params)
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt >= self._retry.max_retries:
                    raise
                self.lock_retries += 1
                time.sleep(self._retry.delay(attempt))
                attempt += 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(instance: Instance) -> str:
        try:
            return json.dumps(dict(instance.attributes), allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise KnowledgeBaseError(
                f"instance {instance.instance_id!r} has attributes that "
                f"cannot be stored in the sqlite backend: {exc}"
            ) from exc

    def insert(self, instance: Instance) -> None:
        self._execute(
            "INSERT OR REPLACE INTO instances (instance_id, cls, data)"
            " VALUES (?, ?, ?)",
            (instance.instance_id, instance.cls, self._encode(instance)),
        )

    def delete(self, instance_id: str) -> Instance | None:
        instance = self.get(instance_id)
        if instance is None:
            return None
        self._execute(
            "DELETE FROM instances WHERE instance_id = ?", (instance_id,)
        )
        return instance

    def clear(self) -> None:
        self._execute("DELETE FROM instances")

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Group many inserts into one transaction (bulk loading).

        Every exception path rolls back: the body raising, the COMMIT
        itself failing, even an injected lock error mid-insert — the
        ``in_transaction`` guard means a rollback is attempted exactly
        when a transaction is actually open, so no exception can leave
        the connection wedged inside a stale BEGIN.

        On a shared ``:memory:`` database the connection lock is held
        for the whole transaction (it is re-entrant, so the body's own
        statements nest), keeping other threads' autocommit statements
        from landing inside the BEGIN.  File databases transact on the
        calling thread's private connection and need no such fence.

        If the *rollback itself* fails, the connection's transaction
        state is unknowable — ``in_transaction`` may keep reporting an
        open BEGIN that can never be closed — so the connection is
        discarded and replaced outright: a later :meth:`bulk` must
        never find a half-open transaction it did not start.
        """
        if self._shared_conn is not None:
            self._conn_lock.acquire()
        try:
            self._execute("BEGIN IMMEDIATE")
            try:
                yield
                self._execute("COMMIT")
            except BaseException:
                if self._conn.in_transaction:
                    try:
                        self._rollback()
                    except sqlite3.Error:
                        self._reset_connection()
                raise
        finally:
            if self._shared_conn is not None:
                self._conn_lock.release()

    def _rollback(self) -> None:
        """Roll back the current transaction (bulk's failure path).

        A seam on purpose: rollback failures are nearly impossible to
        provoke organically, so the resilience test patches this to
        fail and asserts :meth:`bulk` recovers the connection.
        """
        self._conn.execute("ROLLBACK")

    def _reset_connection(self) -> None:
        """Discard the calling context's connection and open a fresh one.

        For a file database the data is on disk and the replacement
        connection sees it unchanged (minus the rolled-back work).  A
        shared ``:memory:`` database dies with its connection, so the
        schema is re-created on the replacement — the store comes back
        empty but *usable*, which is the contract that matters: the
        failed transaction already made the content unreliable.
        """
        old = (
            self._shared_conn
            if self._shared_conn is not None
            else getattr(self._local, "conn", None)
        )
        if old is not None:
            with self._conns_lock:
                if old in self._conns:
                    self._conns.remove(old)
            try:
                old.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        if self._shared_conn is not None:
            self._shared_conn = self._connect()
            self._create_schema()
        else:
            self._local.conn = self._connect()

    # ------------------------------------------------------------------
    # point reads
    # ------------------------------------------------------------------
    @staticmethod
    def _row_to_instance(row: tuple[str, str, str]) -> Instance:
        instance_id, cls, data = row
        return Instance(instance_id, cls, json.loads(data))

    def get(self, instance_id: str) -> Instance | None:
        row = self._execute(
            "SELECT instance_id, cls, data FROM instances"
            " WHERE instance_id = ?",
            (instance_id,),
        ).fetchone()
        return self._row_to_instance(row) if row else None

    def __contains__(self, instance_id: object) -> bool:
        # existence only — skip fetching/decoding the JSON document
        if not isinstance(instance_id, str):
            return False
        return (
            self._execute(
                "SELECT 1 FROM instances WHERE instance_id = ?",
                (instance_id,),
            ).fetchone()
            is not None
        )

    def __len__(self) -> int:
        (count,) = self._execute(
            "SELECT COUNT(*) FROM instances"
        ).fetchone()
        return count

    def __iter__(self) -> Iterator[Instance]:
        cursor = self._execute(
            "SELECT instance_id, cls, data FROM instances"
            " ORDER BY instance_id"
        )
        for row in cursor:
            yield self._row_to_instance(row)

    def classes(self) -> set[str]:
        return {
            cls
            for (cls,) in self._execute(
                "SELECT DISTINCT cls FROM instances"
            )
        }

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------
    def _projection_sql(
        self, attrs: frozenset[str] | None
    ) -> tuple[str, tuple[str, ...]] | None:
        """Column list extracting only the requested JSON paths, or
        None when projection cannot be pushed (fetch full ``data``)."""
        if not attrs or not _HAS_JSON_ARROW:
            return None
        names = tuple(sorted(attrs))
        if not all(_SAFE_ATTR.match(name) for name in names):
            return None
        # `->` (not `->>`) keeps JSON arrays/objects as JSON text so
        # they decode back to the exact Python value.
        columns = ", ".join(f"data -> '$.\"{name}\"'" for name in names)
        return columns, names

    def scan(
        self,
        classes: Iterable[str],
        *,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        self.stats.scans += 1
        class_list = sorted(set(classes))
        if not class_list:
            return
        placeholders = ", ".join("?" for _ in class_list)
        where = [f"cls IN ({placeholders})"]
        params: list[object] = list(class_list)
        residual: list = []
        for condition in conditions:
            compiled = condition_to_sql(condition)
            if compiled is None:
                residual.append(condition)
                self.stats.conditions_python += 1
            else:
                fragment, fragment_params = compiled
                where.append(fragment)
                params.extend(fragment_params)
                self.stats.conditions_pushed += 1

        projection = self._projection_sql(attrs)
        if projection is not None:
            columns, names = projection
            self.stats.projected_scans += 1
            select = f"instance_id, cls, {columns}"
        else:
            names = ()
            select = "instance_id, cls, data"
        sql = (
            f"SELECT {select} FROM instances"
            f" WHERE {' AND '.join(where)}"
            f" ORDER BY instance_id"
        )
        self.last_sql = sql
        for row in self._execute(sql, params):
            if projection is not None:
                attributes = {
                    name: json.loads(cell)
                    for name, cell in zip(names, row[2:])
                    if cell is not None
                }
                instance = Instance(row[0], row[1], attributes)
            else:
                instance = self._row_to_instance(row)
            if residual and not matches_conditions(instance, residual):
                continue
            if predicate is not None and not predicate(instance):
                continue
            self.stats.rows_yielded += 1
            yield instance

    def close(self) -> None:
        """Close every connection the backend ever opened (any thread).

        Threads keep their (now closed) connection objects, so later
        statements fail with sqlite3's own ProgrammingError — the same
        contract a single closed connection always had.
        """
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
            self._closed = True
        for conn in conns:
            conn.close()

    def __enter__(self) -> SQLiteBackend:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
