"""The storage-backend protocol (paper Fig. 1, behind the wrapper).

A backend is pure storage: it holds :class:`~repro.kb.instances.Instance`
rows and answers *scans*.  It knows nothing about ontologies — subclass
closure is expanded by :class:`~repro.kb.instances.InstanceStore` before
a scan reaches the backend, so ``classes`` is always a concrete set of
class terms.

``scan`` is the one read path and it streams: backends yield instances
instead of returning lists, so the executor can overlap fetch,
conversion and predicate work.  Three optional hints let a backend do
work where it is cheapest:

* ``conditions`` — structured :class:`~repro.query.ast.Condition`
  predicates (ANDed).  A backend MUST apply all of them before
  yielding, but MAY evaluate them natively (the SQLite backend
  compiles them to SQL ``WHERE`` clauses); :meth:`ScanStats` records
  how many were evaluated natively vs. in Python.
* ``predicate`` — an opaque Python callable; always applied in Python.
* ``attrs`` — a projection hint: when non-empty the caller promises to
  read only these attributes, so a backend MAY narrow the instances it
  yields to that attribute set (the SQLite backend extracts only those
  JSON paths).

Backends that yield instances in ascending ``instance_id`` order (and
never yield an id twice per scan) set ``ordered = True``; the streaming
executor uses this to skip its final sort.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.kb.instances import Instance

__all__ = ["ScanStats", "StorageBackend", "matches_conditions"]


def matches_conditions(instance: Instance, conditions: Iterable) -> bool:
    """Python-side evaluation of structured conditions (the fallback
    every backend shares)."""
    return all(
        condition.evaluate(instance.get(condition.attribute))
        for condition in conditions
    )


@dataclass
class ScanStats:
    """Per-backend instrumentation, reset never — read deltas."""

    scans: int = 0
    rows_yielded: int = 0
    #: conditions the backend accelerated natively (SQL WHERE, index
    #: narrowing); for index-accelerated backends a condition may also
    #: count under conditions_python when a residual re-check runs
    conditions_pushed: int = 0
    conditions_python: int = 0  # evaluated row-by-row in Python
    projected_scans: int = 0  # scans that narrowed attributes

    def snapshot(self) -> dict[str, int]:
        return {
            "scans": self.scans,
            "rows_yielded": self.rows_yielded,
            "conditions_pushed": self.conditions_pushed,
            "conditions_python": self.conditions_python,
            "projected_scans": self.projected_scans,
        }


class StorageBackend:
    """Abstract base: mutation plus one streaming read operation."""

    #: scans yield unique instances in ascending ``instance_id`` order
    ordered: bool = False
    #: short name used by plan explanations and the CLI
    kind: str = "abstract"

    def __init__(self) -> None:
        self.stats = ScanStats()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, instance: Instance) -> None:
        raise NotImplementedError

    def delete(self, instance_id: str) -> Instance | None:
        """Remove and return the instance, or None when absent."""
        raise NotImplementedError

    def clear(self) -> None:
        """Remove every instance (reloading a persistent backend)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # point reads
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> Instance | None:
        raise NotImplementedError

    def __contains__(self, instance_id: object) -> bool:
        return isinstance(instance_id, str) and self.get(instance_id) is not None

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Instance]:
        raise NotImplementedError

    def classes(self) -> set[str]:
        """Class terms that currently have at least one instance."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def scan(
        self,
        classes: Iterable[str],
        *,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        """Stream instances whose class is in ``classes`` and which
        satisfy every condition and the predicate.  See the module
        docstring for the hint semantics."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any held resources (files, connections)."""
