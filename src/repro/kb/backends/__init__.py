"""Pluggable storage backends for instance stores.

The mediator never depends on how a source stores its data (paper
Fig. 1): :class:`~repro.kb.instances.InstanceStore` delegates all
storage to a :class:`StorageBackend`, and everything above the store —
wrappers, planner, executor — only ever sees the streaming ``scan``
protocol.  Two implementations ship: the dict-indexed
:class:`InMemoryBackend` (the store's historical internals, extracted)
and the persistent :class:`SQLiteBackend` with SQL-side pushdown.
"""

from __future__ import annotations

from repro.errors import KnowledgeBaseError
from repro.kb.backends.base import ScanStats, StorageBackend, matches_conditions
from repro.kb.backends.memory import InMemoryBackend
from repro.kb.backends.sqlite import SQLiteBackend, condition_to_sql

__all__ = [
    "BACKENDS",
    "InMemoryBackend",
    "SQLiteBackend",
    "ScanStats",
    "StorageBackend",
    "condition_to_sql",
    "create_backend",
    "matches_conditions",
]

BACKENDS = {
    "memory": InMemoryBackend,
    "sqlite": SQLiteBackend,
}


def create_backend(kind: str, **kwargs: object) -> StorageBackend:
    """Instantiate a backend by name (``memory`` or ``sqlite``)."""
    try:
        factory = BACKENDS[kind]
    except KeyError:
        raise KnowledgeBaseError(
            f"unknown storage backend {kind!r}; known: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
