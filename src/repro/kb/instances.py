"""Knowledge bases: instance stores conforming to an ontology.

The paper's architecture (Fig. 1) pairs each source ontology with a
knowledge base behind a wrapper; queries reformulated by the query
processor ultimately run against these stores.  An
:class:`InstanceStore` keeps typed instances with attribute values,
indexed by class and by attribute value, and answers class queries
with or without subclass closure (closure uses the ontology's
SubclassOf structure — the rule book the paper says query answering
relies on).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.ontology import Ontology
from repro.errors import KnowledgeBaseError

__all__ = ["Instance", "InstanceStore"]

Value = object


@dataclass(frozen=True)
class Instance:
    """One object: an id, its class term, and attribute values.

    Attribute keys are stored lowercase — sources capitalize
    attribute terms differently (``Price`` vs ``price``) and instance
    data must not care.
    """

    instance_id: str
    cls: str
    attributes: Mapping[str, Value] = field(default_factory=dict)

    def get(self, attribute: str, default: Value | None = None) -> Value | None:
        return self.attributes.get(attribute.lower(), default)

    def with_attributes(self, updates: Mapping[str, Value]) -> "Instance":
        merged = dict(self.attributes)
        merged.update({k.lower(): v for k, v in updates.items()})
        return Instance(self.instance_id, self.cls, merged)


class InstanceStore:
    """An in-memory instance store validated against one ontology."""

    def __init__(
        self,
        ontology: Ontology,
        *,
        strict_attributes: bool = False,
    ) -> None:
        """``strict_attributes`` rejects attribute names that are not
        declared (as AttributeOf terms) on the class or its ancestors."""
        self.ontology = ontology
        self.strict_attributes = strict_attributes
        self._instances: dict[str, Instance] = {}
        self._by_class: dict[str, set[str]] = defaultdict(set)

    @property
    def name(self) -> str:
        return self.ontology.name

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _declared_attributes(self, cls: str) -> set[str]:
        terms = {cls} | self.ontology.ancestors(cls)
        declared: set[str] = set()
        for term in terms:
            declared.update(a.lower() for a in self.ontology.attributes(term))
        return declared

    def add(
        self,
        instance_id: str,
        cls: str,
        attributes: Mapping[str, Value] | None = None,
        **kwargs: Value,
    ) -> Instance:
        """Add an instance of ``cls``; attribute names are free-form
        unless the store is strict."""
        if instance_id in self._instances:
            raise KnowledgeBaseError(
                f"duplicate instance id {instance_id!r} in {self.name!r}"
            )
        if not self.ontology.has_term(cls):
            raise KnowledgeBaseError(
                f"class {cls!r} is not a term of ontology {self.name!r}"
            )
        merged: dict[str, Value] = {}
        for source in (attributes or {}, kwargs):
            for key, value in source.items():
                merged[key.lower()] = value
        if self.strict_attributes:
            declared = self._declared_attributes(cls)
            unknown = sorted(set(merged) - declared)
            if unknown:
                raise KnowledgeBaseError(
                    f"attributes {unknown} not declared on {cls!r} "
                    f"or its ancestors in {self.name!r}"
                )
        instance = Instance(instance_id, cls, merged)
        self._instances[instance_id] = instance
        self._by_class[cls].add(instance_id)
        return instance

    def remove(self, instance_id: str) -> Instance:
        instance = self._instances.pop(instance_id, None)
        if instance is None:
            raise KnowledgeBaseError(
                f"no instance {instance_id!r} in {self.name!r}"
            )
        self._by_class[instance.cls].discard(instance_id)
        return instance

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> Instance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise KnowledgeBaseError(
                f"no instance {instance_id!r} in {self.name!r}"
            ) from None

    def __contains__(self, instance_id: object) -> bool:
        return instance_id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def classes(self) -> set[str]:
        return {cls for cls, ids in self._by_class.items() if ids}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def instances_of(
        self, cls: str, *, include_subclasses: bool = True
    ) -> list[Instance]:
        """Instances of ``cls``; subclass closure follows SubclassOf."""
        if not self.ontology.has_term(cls):
            raise KnowledgeBaseError(
                f"class {cls!r} is not a term of ontology {self.name!r}"
            )
        classes = {cls}
        if include_subclasses:
            classes |= self.ontology.descendants(cls)
        result: list[Instance] = []
        for term in classes:
            result.extend(
                self._instances[iid] for iid in self._by_class.get(term, ())
            )
        return sorted(result, key=lambda i: i.instance_id)

    def select(
        self,
        classes: Iterable[str],
        predicate: Callable[[Instance], bool] | None = None,
        *,
        include_subclasses: bool = True,
    ) -> list[Instance]:
        """Union of class queries, optionally filtered; de-duplicated."""
        seen: dict[str, Instance] = {}
        for cls in classes:
            for instance in self.instances_of(
                cls, include_subclasses=include_subclasses
            ):
                if predicate is None or predicate(instance):
                    seen.setdefault(instance.instance_id, instance)
        return sorted(seen.values(), key=lambda i: i.instance_id)

    def validate(self) -> list[str]:
        """Check every instance's class (and, if strict, attributes)."""
        issues: list[str] = []
        for instance in self._instances.values():
            if not self.ontology.has_term(instance.cls):
                issues.append(
                    f"instance {instance.instance_id!r} has unknown class "
                    f"{instance.cls!r}"
                )
                continue
            if self.strict_attributes:
                declared = self._declared_attributes(instance.cls)
                unknown = sorted(set(instance.attributes) - declared)
                if unknown:
                    issues.append(
                        f"instance {instance.instance_id!r} carries "
                        f"undeclared attributes {unknown}"
                    )
        return issues

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InstanceStore {self.name!r} instances={len(self._instances)}>"
        )
