"""Knowledge bases: instance stores conforming to an ontology.

The paper's architecture (Fig. 1) pairs each source ontology with a
knowledge base behind a wrapper; queries reformulated by the query
processor ultimately run against these stores.  An
:class:`InstanceStore` validates typed instances against one ontology
and delegates all storage to a pluggable
:class:`~repro.kb.backends.base.StorageBackend` (in-memory dict
indexes by default, SQLite for persistence).  It answers class queries
with or without subclass closure (closure uses the ontology's
SubclassOf structure — the rule book the paper says query answering
relies on); closure is expanded *here*, so backends stay ontology-free
and only ever see concrete class sets.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.ontology import Ontology
from repro.errors import KnowledgeBaseError

__all__ = ["Instance", "InstanceStore"]

Value = object


@dataclass(frozen=True)
class Instance:
    """One object: an id, its class term, and attribute values.

    Attribute keys are stored lowercase — sources capitalize
    attribute terms differently (``Price`` vs ``price``) and instance
    data must not care.
    """

    instance_id: str
    cls: str
    attributes: Mapping[str, Value] = field(default_factory=dict)

    def get(self, attribute: str, default: Value | None = None) -> Value | None:
        return self.attributes.get(attribute.lower(), default)

    def with_attributes(self, updates: Mapping[str, Value]) -> "Instance":
        merged = dict(self.attributes)
        merged.update({k.lower(): v for k, v in updates.items()})
        return Instance(self.instance_id, self.cls, merged)


class InstanceStore:
    """An instance store validated against one ontology.

    Storage is delegated to a backend; the store owns validation
    (class membership, strict attributes) and subclass-closure
    expansion.  The default backend is the in-memory one; pass
    ``backend=SQLiteBackend(path)`` for persistence.
    """

    def __init__(
        self,
        ontology: Ontology,
        *,
        strict_attributes: bool = False,
        backend: "StorageBackend | None" = None,
    ) -> None:
        """``strict_attributes`` rejects attribute names that are not
        declared (as AttributeOf terms) on the class or its ancestors."""
        # Imported here: backends import Instance from this module.
        from repro.kb.backends.memory import InMemoryBackend

        self.ontology = ontology
        self.strict_attributes = strict_attributes
        self.backend = backend if backend is not None else InMemoryBackend()

    @property
    def name(self) -> str:
        return self.ontology.name

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _declared_attributes(self, cls: str) -> set[str]:
        terms = {cls} | self.ontology.ancestors(cls)
        declared: set[str] = set()
        for term in terms:
            declared.update(a.lower() for a in self.ontology.attributes(term))
        return declared

    def add(
        self,
        instance_id: str,
        cls: str,
        attributes: Mapping[str, Value] | None = None,
        **kwargs: Value,
    ) -> Instance:
        """Add an instance of ``cls``; attribute names are free-form
        unless the store is strict."""
        if instance_id in self.backend:
            raise KnowledgeBaseError(
                f"duplicate instance id {instance_id!r} in {self.name!r}"
            )
        if not self.ontology.has_term(cls):
            raise KnowledgeBaseError(
                f"class {cls!r} is not a term of ontology {self.name!r}"
            )
        merged: dict[str, Value] = {}
        for source in (attributes or {}, kwargs):
            for key, value in source.items():
                merged[key.lower()] = value
        if self.strict_attributes:
            declared = self._declared_attributes(cls)
            unknown = sorted(set(merged) - declared)
            if unknown:
                raise KnowledgeBaseError(
                    f"attributes {unknown} not declared on {cls!r} "
                    f"or its ancestors in {self.name!r}"
                )
        instance = Instance(instance_id, cls, merged)
        self.backend.insert(instance)
        return instance

    def remove(self, instance_id: str) -> Instance:
        instance = self.backend.delete(instance_id)
        if instance is None:
            raise KnowledgeBaseError(
                f"no instance {instance_id!r} in {self.name!r}"
            )
        return instance

    def clone(self, backend: "StorageBackend") -> "InstanceStore":
        """Copy every instance into ``backend`` and return a new store
        over it (used to migrate a store between backends)."""
        store = InstanceStore(
            self.ontology,
            strict_attributes=self.strict_attributes,
            backend=backend,
        )
        bulk = getattr(backend, "bulk", None)
        if bulk is not None:
            with bulk():
                for instance in self:
                    backend.insert(instance)
        else:
            for instance in self:
                backend.insert(instance)
        return store

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> Instance:
        instance = self.backend.get(instance_id)
        if instance is None:
            raise KnowledgeBaseError(
                f"no instance {instance_id!r} in {self.name!r}"
            )
        return instance

    def __contains__(self, instance_id: object) -> bool:
        return instance_id in self.backend

    def __len__(self) -> int:
        return len(self.backend)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.backend)

    def classes(self) -> set[str]:
        return self.backend.classes()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _expand_classes(
        self, classes: Iterable[str], include_subclasses: bool
    ) -> set[str]:
        """Validate class terms and apply subclass closure."""
        expanded: set[str] = set()
        for cls in classes:
            if not self.ontology.has_term(cls):
                raise KnowledgeBaseError(
                    f"class {cls!r} is not a term of ontology {self.name!r}"
                )
            expanded.add(cls)
            if include_subclasses:
                expanded |= self.ontology.descendants(cls)
        return expanded

    def scan(
        self,
        classes: Iterable[str],
        *,
        include_subclasses: bool = True,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        """Stream instances of the given classes (the layered read
        path: closure expands here, filtering/projection may be pushed
        into the backend).  Yields in ascending ``instance_id`` order
        when the backend is ordered."""
        expanded = self._expand_classes(classes, include_subclasses)
        return self.backend.scan(
            expanded,
            conditions=conditions,
            predicate=predicate,
            attrs=attrs,
        )

    def instances_of(
        self, cls: str, *, include_subclasses: bool = True
    ) -> list[Instance]:
        """Instances of ``cls``; subclass closure follows SubclassOf."""
        return list(
            self.scan((cls,), include_subclasses=include_subclasses)
        )

    def select(
        self,
        classes: Iterable[str],
        predicate: Callable[[Instance], bool] | None = None,
        *,
        include_subclasses: bool = True,
    ) -> list[Instance]:
        """Union of class queries, optionally filtered; de-duplicated."""
        return list(
            self.scan(
                classes,
                include_subclasses=include_subclasses,
                predicate=predicate,
            )
        )

    def validate(self) -> list[str]:
        """Check every instance's class (and, if strict, attributes)."""
        issues: list[str] = []
        for instance in self.backend:
            if not self.ontology.has_term(instance.cls):
                issues.append(
                    f"instance {instance.instance_id!r} has unknown class "
                    f"{instance.cls!r}"
                )
                continue
            if self.strict_attributes:
                declared = self._declared_attributes(instance.cls)
                unknown = sorted(set(instance.attributes) - declared)
                if unknown:
                    issues.append(
                        f"instance {instance.instance_id!r} carries "
                        f"undeclared attributes {unknown}"
                    )
        return issues

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InstanceStore {self.name!r} "
            f"backend={self.backend.kind} instances={len(self.backend)}>"
        )
