"""Out-of-core fact storage: a disk-backed ``FactStore`` twin.

:class:`PagedFactStore` keeps the exact (predicate, position, value)
index contract of :class:`repro.inference.horn.FactStore` — ``add`` /
``remove`` / ``__contains__`` / ``pool`` / ``probe`` / the size
accessors — but the facts and their argument-position indexes live in
SQLite tables instead of Python dicts, so programs whose closure does
not fit in memory still saturate.  The design follows the EMBANKS
move of shifting index structures to disk behind a paged cache
(PAPERS.md): the query algorithms — the Horn engine's compiled join
plans, the overlay/tombstone discipline, the serving tier's snapshot
reads — run unmodified; only the bucket fetch underneath them changes.

Layout:

* ``facts(atom PRIMARY KEY, pred)`` — one row per ground fact, the
  atom JSON-encoded; ``WITHOUT ROWID`` so the table *is* the
  primary-key B-tree and membership checks touch one structure.
* ``args(pred, pos, value, atom)`` with a unique covering index per
  argument position — ``probe(pred, pos, value)`` is one index range
  scan that never reads the base table.

A bounded LRU **buffer pool** (capacity counted in *facts*, not
buckets, so one huge bucket cannot silently blow the cap) fronts the
probe path: hot index buckets are materialized once and then served
from memory, mutations patch cached buckets in place, and buckets
larger than half the pool are streamed rather than pinned
(``oversize`` in the stats).  Hit/miss/eviction counters feed the
out-of-core benchmark's honesty requirement.

Durability is *not* this store's contract — crash safety rides the
:class:`~repro.reliability.journal.ChurnJournal` exactly as for the
in-memory engine — so writes are group-committed (one transaction per
``commit_every`` mutations) and the file runs WAL with
``synchronous=NORMAL``.

:meth:`bulk_load` is the ReCiterDB-style ETL fast path: facts stream
into index-free staging tables with ``executemany`` batches inside one
transaction, are deduped/upserted into the real tables on commit, and
(on a cold store) the covering indexes are built *after* the load
instead of being maintained row by row.

:class:`LabelSpillCache` applies the same discipline to
:class:`~repro.core.patterns.MatchIndex`: its label→candidate tuples
overflow from a bounded in-memory LRU into a SQLite side table instead
of growing without bound.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from pathlib import Path

__all__ = [
    "DEFAULT_BUFFER_FACTS",
    "LabelSpillCache",
    "PagedFactStore",
]

Atom = tuple[str, ...]

#: default buffer-pool capacity, in facts (not buckets)
DEFAULT_BUFFER_FACTS = 65536

#: mutations per group commit — small enough that a crash loses little
#: work, large enough that per-statement fsync never dominates a load
_COMMIT_EVERY = 20000

_FETCH_CHUNK = 2048


def _encode(atom: Atom) -> str:
    return json.dumps(list(atom), separators=(",", ":"), ensure_ascii=False)


def _decode(text: str) -> Atom:
    return tuple(json.loads(text))


class PagedFactStore:
    """Ground facts indexed by ``(predicate, position, value)``, on disk.

    Duck-types :class:`repro.inference.horn.FactStore` (the engine and
    the serving snapshot readers never check the class), including the
    two private touchpoints the engine uses: ``_base`` (always ``None``
    — a paged store is a root store; overlays layer *on top of* it via
    ``FactStore(base=paged)``) and ``_facts`` (a materializing
    property, hit only by legacy rebuild paths).

    ``path=None`` creates a private temporary database file that
    :meth:`close` (or garbage collection) removes; ``":memory:"`` keeps
    the SQLite database RAM-resident, which still exercises the paging
    machinery and is what the parity test-matrix uses for speed.
    """

    kind = "paged"
    # root-store markers, read by HornEngine._facts / SessionManager
    _base = None
    _visible = None

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        buffer_facts: int = DEFAULT_BUFFER_FACTS,
        commit_every: int = _COMMIT_EVERY,
        sqlite_cache_kb: int = 2048,
    ) -> None:
        if buffer_facts < 1:
            raise ValueError(
                f"buffer_facts must be >= 1, got {buffer_facts!r}"
            )
        self._owns_path = path is None
        if path is None:
            handle, tmp = tempfile.mkstemp(
                prefix="onion-pagestore-", suffix=".sqlite"
            )
            os.close(handle)
            path = tmp
        self.path = str(path)
        self.buffer_facts = int(buffer_facts)
        self.commit_every = int(commit_every)
        self._lock = threading.RLock()
        self._closed = False
        conn = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        self._conn = conn
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        # the *SQLite* page cache must stay small too, or the buffer
        # pool's fact cap would be an accounting fiction
        conn.execute(f"PRAGMA cache_size = -{int(sqlite_cache_kb)}")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS facts ("
            " atom TEXT PRIMARY KEY,"
            " pred TEXT NOT NULL) WITHOUT ROWID"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_facts_pred"
            " ON facts (pred, atom)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS args ("
            " pred TEXT NOT NULL,"
            " pos INTEGER NOT NULL,"
            " value TEXT NOT NULL,"
            " atom TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE UNIQUE INDEX IF NOT EXISTS idx_args_cover"
            " ON args (pred, pos, value, atom)"
        )
        # buffer pool: (pred, pos, value) -> insertion-ordered bucket
        self._buffer: OrderedDict[
            tuple[str, int, str], dict[Atom, None]
        ] = OrderedDict()
        self._buffered_facts = 0
        # probe_size answers for buckets not worth materializing
        self._sizes: OrderedDict[tuple[str, int, str], int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0
        self._in_tx = False
        self._tx_pending = 0
        self._count = 0
        self._pred_counts: dict[str, int] = {}
        self._reload_counts()

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _reload_counts(self) -> None:
        self._pred_counts = {
            pred: count
            for pred, count in self._conn.execute(
                "SELECT pred, COUNT(*) FROM facts GROUP BY pred"
            )
        }
        self._count = sum(self._pred_counts.values())

    def _mutating(self) -> None:
        """Open (or extend) the group-commit transaction."""
        if not self._in_tx:
            self._conn.execute("BEGIN")
            self._in_tx = True
        self._tx_pending += 1
        if self._tx_pending >= self.commit_every:
            self._commit()

    def _commit(self) -> None:
        if self._in_tx:
            self._conn.execute("COMMIT")
            self._in_tx = False
            self._tx_pending = 0

    def flush(self) -> None:
        """Commit any open group-commit transaction."""
        with self._lock:
            self._commit()

    def close(self) -> None:
        """Commit, close the connection, delete an owned temp file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._commit()
            finally:
                self._conn.close()
            if self._owns_path:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass

    def __del__(self) -> None:  # pragma: no cover - GC timing varies
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "PagedFactStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the buffer pool
    # ------------------------------------------------------------------
    def _evict_to(self, target: int) -> None:
        while self._buffer and self._buffered_facts > target:
            _, bucket = self._buffer.popitem(last=False)
            self._buffered_facts -= len(bucket)
            self.evictions += 1

    def _bucket(self, key: tuple[str, int, str]) -> dict[Atom, None]:
        """The materialized bucket for one index key (cached or read)."""
        bucket = self._buffer.get(key)
        if bucket is not None:
            self._buffer.move_to_end(key)
            self.hits += 1
            return bucket
        self.misses += 1
        rows = self._conn.execute(
            "SELECT atom FROM args WHERE pred = ? AND pos = ? AND value = ?",
            key,
        ).fetchall()
        bucket = {_decode(atom): None for (atom,) in rows}
        if len(bucket) <= self.buffer_facts // 2:
            self._evict_to(self.buffer_facts - len(bucket))
            self._buffer[key] = bucket
            self._buffered_facts += len(bucket)
            self._sizes.pop(key, None)
        else:
            self.oversize += 1
        return bucket

    def buffer_stats(self) -> dict[str, int | float]:
        """Buffer-pool counters, honest enough for the benchmark."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": self.evictions,
                "oversize": self.oversize,
                "buckets": len(self._buffer),
                "buffered_facts": self._buffered_facts,
                "buffer_facts": self.buffer_facts,
            }

    # ------------------------------------------------------------------
    # the FactStore contract
    # ------------------------------------------------------------------
    def __contains__(self, atom: Atom) -> bool:
        with self._lock:
            # a cached bucket is a complete materialization of its key,
            # so membership can be answered without touching SQLite
            for position in range(1, len(atom)):
                bucket = self._buffer.get(
                    (atom[0], position, atom[position])
                )
                if bucket is not None:
                    return atom in bucket
            row = self._conn.execute(
                "SELECT 1 FROM facts WHERE atom = ?", (_encode(atom),)
            ).fetchone()
            return row is not None

    def __len__(self) -> int:
        return self._count

    def add(self, atom: Atom) -> bool:
        """Insert a ground fact; False if already present."""
        with self._lock:
            encoded = _encode(atom)
            self._mutating()
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO facts (atom, pred) VALUES (?, ?)",
                (encoded, atom[0]),
            )
            if cursor.rowcount == 0:
                return False
            predicate = atom[0]
            self._conn.executemany(
                "INSERT OR IGNORE INTO args (pred, pos, value, atom)"
                " VALUES (?, ?, ?, ?)",
                [
                    (predicate, position, atom[position], encoded)
                    for position in range(1, len(atom))
                ],
            )
            self._count += 1
            self._pred_counts[predicate] = (
                self._pred_counts.get(predicate, 0) + 1
            )
            for position in range(1, len(atom)):
                key = (predicate, position, atom[position])
                bucket = self._buffer.get(key)
                if bucket is not None:
                    if atom not in bucket:
                        bucket[atom] = None
                        self._buffered_facts += 1
                elif key in self._sizes:
                    self._sizes[key] += 1
            if self._buffered_facts > self.buffer_facts:
                self._evict_to(self.buffer_facts)
            return True

    def remove(self, atom: Atom) -> bool:
        """Delete a fact, maintaining every index; False if absent."""
        with self._lock:
            encoded = _encode(atom)
            self._mutating()
            cursor = self._conn.execute(
                "DELETE FROM facts WHERE atom = ?", (encoded,)
            )
            if cursor.rowcount == 0:
                return False
            predicate = atom[0]
            self._conn.executemany(
                "DELETE FROM args WHERE pred = ? AND pos = ? AND value = ?"
                " AND atom = ?",
                [
                    (predicate, position, atom[position], encoded)
                    for position in range(1, len(atom))
                ],
            )
            self._count -= 1
            remaining = self._pred_counts.get(predicate, 0) - 1
            if remaining > 0:
                self._pred_counts[predicate] = remaining
            else:
                self._pred_counts.pop(predicate, None)
            for position in range(1, len(atom)):
                key = (predicate, position, atom[position])
                bucket = self._buffer.get(key)
                if bucket is not None:
                    if bucket.pop(atom, None) is not None:
                        self._buffered_facts -= 1
                elif key in self._sizes:
                    self._sizes[key] = max(0, self._sizes[key] - 1)
            return True

    def in_base(self, atom: Atom) -> bool:
        """A paged store is a root store: nothing is overlay-supplied."""
        return False

    def pool(self, predicate: str) -> Iterator[Atom]:
        """All facts of one predicate, streamed in index-chunk steps."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT atom FROM facts WHERE pred = ?", (predicate,)
            )
        while True:
            with self._lock:
                rows = cursor.fetchmany(_FETCH_CHUNK)
            if not rows:
                return
            for (atom,) in rows:
                yield _decode(atom)

    def pool_size(self, predicate: str) -> int:
        return self._pred_counts.get(predicate, 0)

    def probe(
        self, predicate: str, position: int, value: str
    ) -> Iterator[Atom]:
        """Facts with ``value`` at ``position`` — one buffered bucket."""
        with self._lock:
            bucket = self._bucket((predicate, position, value))
            # snapshot: the bucket may be patched by a later add/remove
            # while the caller is still consuming the iterator
            return iter(tuple(bucket))

    def probe_size(self, predicate: str, position: int, value: str) -> int:
        with self._lock:
            key = (predicate, position, value)
            bucket = self._buffer.get(key)
            if bucket is not None:
                self._buffer.move_to_end(key)
                return len(bucket)
            size = self._sizes.get(key)
            if size is not None:
                self._sizes.move_to_end(key)
                return size
            (size,) = self._conn.execute(
                "SELECT COUNT(*) FROM args"
                " WHERE pred = ? AND pos = ? AND value = ?",
                key,
            ).fetchone()
            self._sizes[key] = size
            while len(self._sizes) > 4 * _FETCH_CHUNK:
                self._sizes.popitem(last=False)
            return size

    def predicates(self) -> set[str]:
        return {p for p, n in self._pred_counts.items() if n}

    def iter_facts(self, predicate: str | None = None) -> Iterator[Atom]:
        if predicate is not None:
            yield from self.pool(predicate)
            return
        with self._lock:
            cursor = self._conn.execute("SELECT atom FROM facts")
        while True:
            with self._lock:
                rows = cursor.fetchmany(_FETCH_CHUNK)
            if not rows:
                return
            for (atom,) in rows:
                yield _decode(atom)

    @property
    def _facts(self) -> set[Atom]:
        """Materialized fact set (legacy rebuild paths only — O(n))."""
        return set(self.iter_facts())

    # ------------------------------------------------------------------
    # bulk ETL (staging + batch upsert + post-load reindex)
    # ------------------------------------------------------------------
    def bulk_load(
        self, facts: Iterable[Atom], *, batch_size: int = 20000
    ) -> dict[str, int]:
        """Stream many facts in at ETL speed; returns a load report.

        The ReCiterDB discipline: ``executemany`` batches land in
        index-free staging tables inside one transaction, the commit
        dedupes/upserts them into the real tables, and on a cold store
        the covering indexes are dropped first and rebuilt *after* the
        load (an upsert into a warm store keeps them — the unique
        index is what arbitrates the dedupe).  The buffer pool is
        invalidated wholesale at the end; a bulk load rewrites too much
        for patching to make sense.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        with self._lock:
            self._commit()
            conn = self._conn
            before = self._count
            cold = before == 0
            conn.execute(
                "CREATE TEMP TABLE staging_facts (atom TEXT, pred TEXT)"
            )
            conn.execute(
                "CREATE TEMP TABLE staging_args ("
                " pred TEXT, pos INTEGER, value TEXT, atom TEXT)"
            )
            staged = 0
            batches = 0
            try:
                if cold:
                    conn.execute("DROP INDEX IF EXISTS idx_facts_pred")
                    conn.execute("DROP INDEX IF EXISTS idx_args_cover")
                conn.execute("BEGIN")
                fact_rows: list[tuple[str, str]] = []
                arg_rows: list[tuple[str, int, str, str]] = []
                for atom in facts:
                    encoded = _encode(atom)
                    fact_rows.append((encoded, atom[0]))
                    for position in range(1, len(atom)):
                        arg_rows.append(
                            (atom[0], position, atom[position], encoded)
                        )
                    staged += 1
                    if len(fact_rows) >= batch_size:
                        conn.executemany(
                            "INSERT INTO staging_facts VALUES (?, ?)",
                            fact_rows,
                        )
                        conn.executemany(
                            "INSERT INTO staging_args VALUES (?, ?, ?, ?)",
                            arg_rows,
                        )
                        fact_rows.clear()
                        arg_rows.clear()
                        batches += 1
                if fact_rows:
                    conn.executemany(
                        "INSERT INTO staging_facts VALUES (?, ?)", fact_rows
                    )
                    conn.executemany(
                        "INSERT INTO staging_args VALUES (?, ?, ?, ?)",
                        arg_rows,
                    )
                    batches += 1
                # dedupe/upsert on commit: within the staged batch via
                # DISTINCT, against prior contents via OR IGNORE on the
                # primary key / unique covering index
                conn.execute(
                    "INSERT OR IGNORE INTO facts (atom, pred)"
                    " SELECT DISTINCT atom, pred FROM staging_facts"
                )
                if cold:
                    conn.execute(
                        "INSERT INTO args (pred, pos, value, atom)"
                        " SELECT DISTINCT pred, pos, value, atom"
                        " FROM staging_args"
                    )
                else:
                    conn.execute(
                        "INSERT OR IGNORE INTO args (pred, pos, value, atom)"
                        " SELECT DISTINCT pred, pos, value, atom"
                        " FROM staging_args"
                    )
                conn.execute("COMMIT")
            except BaseException:
                if conn.in_transaction:
                    conn.execute("ROLLBACK")
                raise
            finally:
                if cold:
                    conn.execute(
                        "CREATE INDEX IF NOT EXISTS idx_facts_pred"
                        " ON facts (pred, atom)"
                    )
                    conn.execute(
                        "CREATE UNIQUE INDEX IF NOT EXISTS idx_args_cover"
                        " ON args (pred, pos, value, atom)"
                    )
                conn.execute("DROP TABLE IF EXISTS staging_facts")
                conn.execute("DROP TABLE IF EXISTS staging_args")
            self._buffer.clear()
            self._buffered_facts = 0
            self._sizes.clear()
            self._reload_counts()
            return {
                "staged": staged,
                "batches": batches,
                "added": self._count - before,
                "deduplicated": staged - (self._count - before),
                "facts": self._count,
                "predicates": len(self._pred_counts),
                "reindexed": int(cold),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PagedFactStore path={self.path!r} facts={self._count} "
            f"buffer={self._buffered_facts}/{self.buffer_facts}>"
        )


class LabelSpillCache:
    """A bounded label→candidates map that spills evictions to SQLite.

    Drop-in for :class:`~repro.core.patterns.MatchIndex`'s
    ``_label_cache`` dict: supports ``get`` / ``__setitem__`` /
    ``items`` (the only operations the index performs).  The in-memory
    side is an LRU over at most ``capacity`` labels; evicted entries
    move to a SQLite table and are promoted back on access, so a warm
    label costs dict probes and a cold-but-spilled one costs one index
    lookup instead of a full candidate recomputation.

    ``items()`` walks only the in-memory entries — that is what the
    index's journal replay patches in place — so a replay must call
    :meth:`invalidate_spilled` to drop the disk side (whose tuples the
    replay cannot see).  The owner's version discipline guarantees the
    next access recomputes them against the current graph.
    """

    def __init__(
        self,
        capacity: int = 128,
        path: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._owns_path = path is None
        if path is None:
            handle, tmp = tempfile.mkstemp(
                prefix="onion-spill-", suffix=".sqlite"
            )
            os.close(handle)
            path = tmp
        self.path = str(path)
        self._conn = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = OFF")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS spill ("
            " label TEXT PRIMARY KEY, nodes TEXT NOT NULL)"
        )
        self._lock = threading.RLock()
        self._hot: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        self.spills = 0
        self.reloads = 0

    def _spill_oldest(self) -> None:
        label, nodes = self._hot.popitem(last=False)
        self._conn.execute(
            "INSERT OR REPLACE INTO spill (label, nodes) VALUES (?, ?)",
            (label, json.dumps(list(nodes))),
        )
        self.spills += 1

    def get(self, label: str) -> tuple[str, ...] | None:
        with self._lock:
            cached = self._hot.get(label)
            if cached is not None:
                self._hot.move_to_end(label)
                return cached
            row = self._conn.execute(
                "SELECT nodes FROM spill WHERE label = ?", (label,)
            ).fetchone()
            if row is None:
                return None
            nodes = tuple(json.loads(row[0]))
            self._conn.execute(
                "DELETE FROM spill WHERE label = ?", (label,)
            )
            self.reloads += 1
            self[label] = nodes
            return nodes

    def __setitem__(self, label: str, nodes: tuple[str, ...]) -> None:
        with self._lock:
            if label in self._hot:
                # plain replace, no reorder: journal replay assigns
                # while iterating items()
                self._hot[label] = nodes
                return
            while len(self._hot) >= self.capacity:
                self._spill_oldest()
            self._hot[label] = nodes

    def items(self) -> list[tuple[str, tuple[str, ...]]]:
        """The in-memory entries (what a journal replay can patch)."""
        with self._lock:
            return list(self._hot.items())

    def invalidate_spilled(self) -> int:
        """Drop the disk side (stale after a journal replay)."""
        with self._lock:
            cursor = self._conn.execute("DELETE FROM spill")
            return cursor.rowcount

    def __len__(self) -> int:
        with self._lock:
            (spilled,) = self._conn.execute(
                "SELECT COUNT(*) FROM spill"
            ).fetchone()
            return len(self._hot) + spilled

    def stats(self) -> dict[str, int]:
        with self._lock:
            (spilled,) = self._conn.execute(
                "SELECT COUNT(*) FROM spill"
            ).fetchone()
            return {
                "hot": len(self._hot),
                "spilled": spilled,
                "capacity": self.capacity,
                "spills": self.spills,
                "reloads": self.reloads,
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()
            if self._owns_path:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass

    def __del__(self) -> None:  # pragma: no cover - GC timing varies
        try:
            self.close()
        except Exception:
            pass
