"""Bulk fact ingest: file → staged batches → paged store (+ journal).

The ETL counterpart to fact-at-a-time churn, modeled on ReCiterDB's
load discipline: facts stream out of a JSON-lines or TSV file in
``executemany``-sized batches into :meth:`PagedFactStore.bulk_load`'s
index-free staging tables, are deduped/upserted in one transaction,
and the covering indexes are built *after* the load on a cold store.
When asked, the load ends with a single
:meth:`~repro.reliability.journal.ChurnJournal.snapshot_state`, so an
ingested base recovers exactly like a churned one.

Use ingest when the diff is the dataset (initial load, nightly
re-sync): a million facts land in seconds and the journal holds one
snapshot.  Use churn (:meth:`HornEngine.apply_batch`) when the diff
is small relative to the base: it keeps the saturated closure
incremental and write-ahead logs just the delta.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import KnowledgeBaseError
from repro.kb.pagestore import DEFAULT_BUFFER_FACTS, PagedFactStore

__all__ = ["ingest_facts", "iter_fact_file"]

Atom = tuple[str, ...]


def _parse_jsonl_line(line: str, where: str) -> Atom:
    try:
        parts = json.loads(line)
    except json.JSONDecodeError as exc:
        raise KnowledgeBaseError(f"{where}: not valid JSON: {exc}") from None
    if (
        not isinstance(parts, list)
        or len(parts) < 1
        or not all(isinstance(p, str) for p in parts)
    ):
        raise KnowledgeBaseError(
            f"{where}: a fact is a JSON array of strings "
            f"[predicate, arg, ...], got {parts!r}"
        )
    return tuple(parts)


def iter_fact_file(
    path: str | Path, *, fmt: str = "auto"
) -> Iterator[Atom]:
    """Stream ground atoms out of a fact file, one per line.

    ``jsonl`` lines are JSON arrays of strings
    (``["implies", "a:Car", "b:Vehicle"]``); ``tsv`` lines are
    tab-separated (``implies\\ta:Car\\tb:Vehicle``).  ``auto`` sniffs
    per the first non-blank line.  Blank lines and ``#`` comments are
    skipped.  The stream is lazy — a million-fact file never sits in
    memory.
    """
    if fmt not in ("auto", "jsonl", "tsv"):
        raise KnowledgeBaseError(f"unknown fact-file format {fmt!r}")
    with open(path, encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if fmt == "auto":
                fmt = "jsonl" if line.startswith("[") else "tsv"
            where = f"{path}:{number}"
            if fmt == "jsonl":
                yield _parse_jsonl_line(line, where)
            else:
                yield tuple(line.split("\t"))


def ingest_facts(
    db_path: str | Path,
    facts: Iterable[Atom],
    *,
    batch_size: int = 20000,
    buffer_facts: int = DEFAULT_BUFFER_FACTS,
    journal_path: str | Path | None = None,
) -> dict[str, object]:
    """Bulk-load facts into a paged store database; returns a report.

    The database at ``db_path`` is created if missing and upserted
    into if not — re-running an ingest is idempotent (the dedupe
    happens on commit, against both the staged batch and prior
    contents).  With ``journal_path``, the full post-load fact base is
    written as one :class:`ChurnJournal` snapshot, making the ingested
    state the recovery baseline.  The resulting database is what an
    engine opens via ``storage="paged", storage_path=db_path``.
    """
    started = time.perf_counter()
    store = PagedFactStore(db_path, buffer_facts=buffer_facts)
    try:
        report: dict[str, object] = store.bulk_load(
            facts, batch_size=batch_size
        )
        journaled = 0
        if journal_path is not None:
            from repro.reliability.journal import ChurnJournal

            journaled = ChurnJournal(journal_path).snapshot_state(
                store.iter_facts()
            )
        report["journaled"] = journaled
        report["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
        report["db"] = str(db_path)
        return report
    finally:
        store.close()
