"""JSON (de)serialization for instance stores.

The CLI and examples need a way to ship instance data next to an
ontology file.  The payload shape::

    {
      "ontology": "carrier",
      "instances": [
        {"id": "MyCar", "class": "Cars",
         "attributes": {"price": 2000, "owner": "Gio"}}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.ontology import Ontology
from repro.errors import FormatError
from repro.kb.instances import InstanceStore

__all__ = ["store_to_dict", "store_from_dict", "load_store", "save_store"]


def store_to_dict(store: InstanceStore) -> dict:
    return {
        "ontology": store.name,
        "instances": [
            {
                "id": instance.instance_id,
                "class": instance.cls,
                "attributes": dict(instance.attributes),
            }
            for instance in sorted(store, key=lambda i: i.instance_id)
        ],
    }


def store_from_dict(
    payload: dict,
    ontology: Ontology,
    *,
    strict_attributes: bool = False,
) -> InstanceStore:
    declared = payload.get("ontology")
    if declared is not None and declared != ontology.name:
        raise FormatError(
            f"instance data is for ontology {declared!r}, "
            f"got {ontology.name!r}"
        )
    store = InstanceStore(ontology, strict_attributes=strict_attributes)
    for entry in payload.get("instances", ()):
        missing = [key for key in ("id", "class") if key not in entry]
        if missing:
            raise FormatError(f"instance entry missing {missing}: {entry!r}")
        store.add(entry["id"], entry["class"], entry.get("attributes", {}))
    return store


def load_store(
    path: str | Path,
    ontology: Ontology,
    *,
    strict_attributes: bool = False,
) -> InstanceStore:
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"malformed instance JSON in {path}: {exc}") from exc
    return store_from_dict(
        payload, ontology, strict_attributes=strict_attributes
    )


def save_store(store: InstanceStore, path: str | Path) -> None:
    Path(path).write_text(json.dumps(store_to_dict(store), indent=2))
