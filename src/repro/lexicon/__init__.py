"""Semantic lexicon (WordNet substitute), SKAT matchers and the expert loop."""

from repro.lexicon.expert import (
    AcceptAllPolicy,
    CallbackPolicy,
    ExpertDecision,
    ExpertPolicy,
    GroundTruthPolicy,
    InteractivePolicy,
    MatchCandidate,
    ReviewedCandidate,
    ScriptedPolicy,
    ThresholdPolicy,
)
from repro.lexicon.skat import (
    ExactLabelMatcher,
    HypernymMatcher,
    Matcher,
    SkatEngine,
    StructuralMatcher,
    SynonymMatcher,
    articulate_with_expert,
)
from repro.lexicon.wordnet import (
    MiniWordNet,
    Synset,
    normalize_lemma,
    seed_lexicon,
)

__all__ = [
    "AcceptAllPolicy",
    "CallbackPolicy",
    "ExactLabelMatcher",
    "ExpertDecision",
    "ExpertPolicy",
    "GroundTruthPolicy",
    "HypernymMatcher",
    "InteractivePolicy",
    "MatchCandidate",
    "Matcher",
    "MiniWordNet",
    "ReviewedCandidate",
    "ScriptedPolicy",
    "SkatEngine",
    "StructuralMatcher",
    "Synset",
    "SynonymMatcher",
    "ThresholdPolicy",
    "articulate_with_expert",
    "normalize_lemma",
    "seed_lexicon",
]
