"""A miniature WordNet-style semantic lexicon.

The paper's SKAT uses "external knowledge sources or semantic lexicons
(e.g., Wordnet)" to propose articulation rules.  WordNet itself is not
shippable here, so :class:`MiniWordNet` implements the slice of it SKAT
actually consumes: synsets (synonym sets) linked by hypernymy, with
lemma lookup, synonym/hypernym queries and a path-based similarity.
:func:`seed_lexicon` provides a hand-built vocabulary that covers the
paper's transportation/commerce running example and the synthetic
workloads; custom lexicons load from simple dict payloads.
"""

from __future__ import annotations

import json
import re
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LexiconError

__all__ = ["Synset", "MiniWordNet", "normalize_lemma", "seed_lexicon"]

_SEPARATORS = re.compile(r"[\s_\-]+")
_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def normalize_lemma(term: str) -> str:
    """Canonical lemma form: lowercase, separators and camel-case folded.

    ``PassengerCar``, ``passenger_car`` and ``passenger car`` all map
    to ``passengercar`` so ontology labels written in different styles
    still meet in the lexicon.
    """
    decamel = _CAMEL.sub(" ", term)
    return _SEPARATORS.sub("", decamel.strip().lower())


@dataclass(frozen=True, slots=True)
class Synset:
    """A set of synonymous lemmas plus hypernym links to other synsets."""

    synset_id: str
    lemmas: tuple[str, ...]
    hypernyms: tuple[str, ...] = ()
    gloss: str = ""

    def __post_init__(self) -> None:
        if not self.lemmas:
            raise LexiconError(f"synset {self.synset_id!r} has no lemmas")


class MiniWordNet:
    """In-memory synset store with hypernym navigation."""

    def __init__(self, synsets: Iterable[Synset] = ()) -> None:
        self._synsets: dict[str, Synset] = {}
        self._by_lemma: dict[str, set[str]] = {}
        # Memoized derived data, keyed per synset / normalized lemma.
        # SKAT's matchers hammer hypernym_closure / synonyms / _depth
        # in tight loops; each is computed once and invalidated on add.
        self._closure_cache: dict[str, frozenset[str]] = {}
        self._depth_cache: dict[str, int] = {}
        self._synonym_cache: dict[str, frozenset[str]] = {}
        for synset in synsets:
            self.add(synset)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, synset: Synset) -> Synset:
        if synset.synset_id in self._synsets:
            raise LexiconError(f"duplicate synset id {synset.synset_id!r}")
        self._synsets[synset.synset_id] = synset
        for lemma in synset.lemmas:
            self._by_lemma.setdefault(normalize_lemma(lemma), set()).add(
                synset.synset_id
            )
        # A new synset can extend any closure (it may sit under — or
        # above, via its hypernym links — cached entries), so the
        # memoized views are dropped wholesale.
        self._closure_cache.clear()
        self._depth_cache.clear()
        self._synonym_cache.clear()
        return synset

    def add_synset(
        self,
        synset_id: str,
        lemmas: Iterable[str],
        *,
        hypernyms: Iterable[str] = (),
        gloss: str = "",
    ) -> Synset:
        return self.add(
            Synset(synset_id, tuple(lemmas), tuple(hypernyms), gloss)
        )

    def validate(self) -> list[str]:
        """Report dangling hypernym references."""
        issues = []
        for synset in self._synsets.values():
            for hypernym in synset.hypernyms:
                if hypernym not in self._synsets:
                    issues.append(
                        f"synset {synset.synset_id!r} references missing "
                        f"hypernym {hypernym!r}"
                    )
        return issues

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def synset(self, synset_id: str) -> Synset:
        try:
            return self._synsets[synset_id]
        except KeyError:
            raise LexiconError(f"unknown synset {synset_id!r}") from None

    def synsets_for(self, term: str) -> list[Synset]:
        ids = self._by_lemma.get(normalize_lemma(term), ())
        return [self._synsets[sid] for sid in sorted(ids)]

    def synset_ids(self, term: str) -> tuple[str, ...]:
        """The sorted synset ids a term's normalized lemma belongs to.

        The blocking key SKAT's matchers index candidates by.
        """
        return tuple(sorted(self._by_lemma.get(normalize_lemma(term), ())))

    def knows(self, term: str) -> bool:
        return normalize_lemma(term) in self._by_lemma

    def synonyms(self, term: str) -> frozenset[str]:
        """All lemmas sharing a synset with ``term`` (excluding itself).

        Memoized per normalized lemma; invalidated when a synset is
        added.
        """
        norm = normalize_lemma(term)
        cached = self._synonym_cache.get(norm)
        if cached is not None:
            return cached
        result: set[str] = set()
        for synset in self.synsets_for(term):
            result.update(synset.lemmas)
        frozen = frozenset(
            lemma for lemma in result if normalize_lemma(lemma) != norm
        )
        self._synonym_cache[norm] = frozen
        return frozen

    def are_synonyms(self, term_a: str, term_b: str) -> bool:
        ids_a = self._by_lemma.get(normalize_lemma(term_a), set())
        ids_b = self._by_lemma.get(normalize_lemma(term_b), set())
        return bool(ids_a & ids_b)

    # ------------------------------------------------------------------
    # hypernymy
    # ------------------------------------------------------------------
    def hypernym_closure(self, synset_id: str) -> frozenset[str]:
        """All ancestors of a synset (excluding itself).

        Memoized per synset id; invalidated when a synset is added.
        """
        cached = self._closure_cache.get(synset_id)
        if cached is not None:
            return cached
        self.synset(synset_id)
        seen: set[str] = set()
        frontier = deque([synset_id])
        while frontier:
            current = frontier.popleft()
            for parent in self._synsets[current].hypernyms:
                if parent in self._synsets and parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        frozen = frozenset(seen)
        self._closure_cache[synset_id] = frozen
        return frozen

    def is_hyponym_of(self, specific: str, general: str) -> bool:
        """True iff some synset of ``specific`` descends from one of
        ``general`` (strict: synonymy does not count)."""
        general_ids = {
            s.synset_id for s in self.synsets_for(general)
        }
        if not general_ids:
            return False
        for synset in self.synsets_for(specific):
            if self.hypernym_closure(synset.synset_id) & general_ids:
                return True
        return False

    def _depth(self, synset_id: str) -> int:
        cached = self._depth_cache.get(synset_id)
        if cached is None:
            cached = len(self.hypernym_closure(synset_id))
            self._depth_cache[synset_id] = cached
        return cached

    def similarity(self, term_a: str, term_b: str) -> float:
        """Wu-Palmer-style similarity in [0, 1]; 0 when unrelated.

        ``2 * depth(lcs) / (depth(a) + depth(b))`` over the hypernym
        DAG, maximized across the synsets of each term.  Synonyms score
        1.0.
        """
        if normalize_lemma(term_a) == normalize_lemma(term_b):
            return 1.0
        if self.are_synonyms(term_a, term_b):
            return 1.0
        best = 0.0
        for sa in self.synsets_for(term_a):
            closure_a = self.hypernym_closure(sa.synset_id) | {sa.synset_id}
            depth_a = self._depth(sa.synset_id) + 1
            for sb in self.synsets_for(term_b):
                closure_b = self.hypernym_closure(sb.synset_id) | {
                    sb.synset_id
                }
                depth_b = self._depth(sb.synset_id) + 1
                common = closure_a & closure_b
                if not common:
                    continue
                lcs_depth = max(self._depth(c) + 1 for c in common)
                score = 2.0 * lcs_depth / (depth_a + depth_b)
                best = max(best, score)
        return min(best, 1.0)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "synsets": [
                {
                    "id": s.synset_id,
                    "lemmas": list(s.lemmas),
                    "hypernyms": list(s.hypernyms),
                    "gloss": s.gloss,
                }
                for s in self._synsets.values()
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MiniWordNet":
        lexicon = cls()
        for entry in payload.get("synsets", ()):
            lexicon.add_synset(
                entry["id"],
                entry["lemmas"],
                hypernyms=entry.get("hypernyms", ()),
                gloss=entry.get("gloss", ""),
            )
        issues = lexicon.validate()
        if issues:
            raise LexiconError("; ".join(issues))
        return lexicon

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "MiniWordNet":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __len__(self) -> int:
        return len(self._synsets)

    def __iter__(self) -> Iterator[Synset]:
        return iter(self._synsets.values())


def seed_lexicon() -> MiniWordNet:
    """The built-in vocabulary: transportation, commerce, currency.

    Covers every term in the paper's Fig. 2 running example plus the
    vocabulary the synthetic workload generator draws from, arranged
    under a small upper ontology (entity > object > ...).
    """
    lex = MiniWordNet()
    add = lex.add_synset

    add("entity.n.01", ["entity", "thing"])
    add("object.n.01", ["object", "physical object"], hypernyms=["entity.n.01"])
    add(
        "artifact.n.01",
        ["artifact", "artefact"],
        hypernyms=["object.n.01"],
    )
    add(
        "conveyance.n.01",
        ["conveyance", "transport", "transportation"],
        hypernyms=["artifact.n.01"],
        gloss="something that serves as a means of transportation",
    )
    add(
        "vehicle.n.01",
        ["vehicle"],
        hypernyms=["conveyance.n.01"],
    )
    add(
        "wheeled_vehicle.n.01",
        ["wheeled vehicle"],
        hypernyms=["vehicle.n.01"],
    )
    add(
        "motor_vehicle.n.01",
        ["motor vehicle", "automotive vehicle"],
        hypernyms=["wheeled_vehicle.n.01"],
    )
    add(
        "car.n.01",
        ["car", "auto", "automobile", "motorcar", "passenger car", "cars"],
        hypernyms=["motor_vehicle.n.01"],
    )
    add(
        "truck.n.01",
        ["truck", "lorry", "trucks", "goods vehicle", "cargo vehicle"],
        hypernyms=["motor_vehicle.n.01"],
    )
    add(
        "suv.n.01",
        ["SUV", "sport utility vehicle", "off-roader"],
        hypernyms=["car.n.01"],
    )
    add(
        "van.n.01",
        ["van", "minivan"],
        hypernyms=["motor_vehicle.n.01"],
    )
    add(
        "bicycle.n.01",
        ["bicycle", "bike", "cycle"],
        hypernyms=["wheeled_vehicle.n.01"],
    )
    add(
        "carrier.n.01",
        ["carrier", "transporter", "cargo carrier", "hauler"],
        hypernyms=["conveyance.n.01"],
    )
    add(
        "ship.n.01",
        ["ship", "vessel"],
        hypernyms=["vehicle.n.01"],
    )
    add(
        "airplane.n.01",
        ["airplane", "aeroplane", "plane", "aircraft"],
        hypernyms=["vehicle.n.01"],
    )

    add("person.n.01", ["person", "individual", "human", "someone"],
        hypernyms=["entity.n.01"])
    add(
        "owner.n.01",
        ["owner", "possessor", "proprietor", "holder"],
        hypernyms=["person.n.01"],
    )
    add(
        "driver.n.01",
        ["driver", "motorist", "operator"],
        hypernyms=["person.n.01"],
    )
    add(
        "buyer.n.01",
        ["buyer", "purchaser", "vendee", "customer"],
        hypernyms=["person.n.01"],
    )
    add(
        "seller.n.01",
        ["seller", "vendor", "merchant"],
        hypernyms=["person.n.01"],
    )

    add("attribute.n.01", ["attribute", "property"], hypernyms=["entity.n.01"])
    add(
        "price.n.01",
        ["price", "cost", "terms", "damage"],
        hypernyms=["attribute.n.01"],
    )
    add(
        "weight.n.01",
        ["weight", "mass", "heaviness"],
        hypernyms=["attribute.n.01"],
    )
    add(
        "model.n.01",
        ["model", "version", "variant"],
        hypernyms=["attribute.n.01"],
    )
    add(
        "capacity.n.01",
        ["capacity", "volume"],
        hypernyms=["attribute.n.01"],
    )

    add("goods.n.01", ["goods", "cargo", "freight", "merchandise", "payload"],
        hypernyms=["object.n.01"])
    add(
        "factory.n.01",
        ["factory", "plant", "works", "mill", "manufactory"],
        hypernyms=["artifact.n.01"],
    )
    add(
        "warehouse.n.01",
        ["warehouse", "depot", "storehouse"],
        hypernyms=["artifact.n.01"],
    )

    add("money.n.01", ["money", "currency"], hypernyms=["entity.n.01"])
    add("euro.n.01", ["euro", "EUR"], hypernyms=["money.n.01"])
    add(
        "guilder.n.01",
        ["guilder", "gulden", "florin", "Dutch guilder", "DutchGuilders"],
        hypernyms=["money.n.01"],
    )
    add(
        "sterling.n.01",
        ["pound sterling", "sterling", "GBP", "quid", "PoundSterling"],
        hypernyms=["money.n.01"],
    )
    add("dollar.n.01", ["dollar", "USD", "buck"], hypernyms=["money.n.01"])

    issues = lex.validate()
    if issues:  # pragma: no cover - seed data is static
        raise LexiconError("; ".join(issues))
    return lex
