"""The domain expert in the loop (paper §2.2, §2.4).

"Articulation rules are proposed by SKAT ... and verified by the
expert.  The expert has the final word on the articulation generation."

The paper's expert is a human at a GUI; here the expert is a *policy*
object so the loop is scriptable and deterministic — the control flow
(propose, review, apply, iterate) is identical.  An interactive policy
is provided for actual humans at a terminal.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.rules import ImplicationRule, Rule

__all__ = [
    "ExpertDecision",
    "ReviewedCandidate",
    "MatchCandidate",
    "ExpertPolicy",
    "AcceptAllPolicy",
    "ThresholdPolicy",
    "GroundTruthPolicy",
    "ScriptedPolicy",
    "CallbackPolicy",
    "InteractivePolicy",
]


class ExpertDecision(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    MODIFY = "modify"


@dataclass(frozen=True)
class MatchCandidate:
    """One suggestion from SKAT: a rule, a confidence, and a reason.

    ``score`` is in [0, 1]; ``matcher`` names the heuristic that
    produced it; ``reason`` is the human-readable justification shown
    to the expert.
    """

    rule: Rule
    score: float
    matcher: str
    reason: str = ""

    def key(self) -> str:
        return str(self.rule)


@dataclass(frozen=True)
class ReviewedCandidate:
    """A candidate after expert review.

    ``replacement`` carries the corrected rule when the decision is
    MODIFY ("If the expert suggests modifications or new rules, they
    are forwarded to SKAT", §2.4).
    """

    candidate: MatchCandidate
    decision: ExpertDecision
    replacement: Rule | None = None

    def accepted_rule(self) -> Rule | None:
        if self.decision is ExpertDecision.ACCEPT:
            return self.candidate.rule
        if self.decision is ExpertDecision.MODIFY:
            return self.replacement
        return None


class ExpertPolicy:
    """Reviews a batch of candidates; subclasses implement ``review``."""

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        raise NotImplementedError

    def extra_rules(self) -> list[Rule]:
        """Rules the expert volunteers beyond the suggestions."""
        return []


class AcceptAllPolicy(ExpertPolicy):
    """Fully automatic: trust every suggestion (the paper's cautionary
    'automated and perhaps unreliable system' end of the spectrum)."""

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        return [
            ReviewedCandidate(c, ExpertDecision.ACCEPT) for c in candidates
        ]


@dataclass
class ThresholdPolicy(ExpertPolicy):
    """Accept suggestions scoring at or above ``threshold``."""

    threshold: float = 0.8

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        return [
            ReviewedCandidate(
                c,
                ExpertDecision.ACCEPT
                if c.score >= self.threshold
                else ExpertDecision.REJECT,
            )
            for c in candidates
        ]


@dataclass
class GroundTruthPolicy(ExpertPolicy):
    """Accept exactly the rules in a known-good alignment.

    Used by the SKAT quality benchmark: the synthetic workload knows
    the true alignment, so this policy plays a perfectly informed
    expert, and precision/recall of the *suggestions* can be measured
    against it.
    """

    truth: frozenset[str]  # rule texts, as produced by str(rule)

    @classmethod
    def from_rules(cls, rules: Iterable[Rule]) -> "GroundTruthPolicy":
        return cls(frozenset(str(rule) for rule in rules))

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        return [
            ReviewedCandidate(
                c,
                ExpertDecision.ACCEPT
                if c.key() in self.truth
                else ExpertDecision.REJECT,
            )
            for c in candidates
        ]


@dataclass
class ScriptedPolicy(ExpertPolicy):
    """Decisions scripted per rule text; unknown rules use ``default``.

    ``modifications`` maps a rule text to its replacement rule.
    ``volunteered`` rules are injected on the first review round.
    """

    decisions: Mapping[str, ExpertDecision] = field(default_factory=dict)
    modifications: Mapping[str, Rule] = field(default_factory=dict)
    default: ExpertDecision = ExpertDecision.REJECT
    volunteered: tuple[Rule, ...] = ()
    _volunteered_spent: bool = field(default=False, repr=False)

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        reviewed = []
        for candidate in candidates:
            decision = self.decisions.get(candidate.key(), self.default)
            replacement = None
            if decision is ExpertDecision.MODIFY:
                replacement = self.modifications.get(candidate.key())
                if replacement is None:
                    decision = ExpertDecision.REJECT
            reviewed.append(
                ReviewedCandidate(candidate, decision, replacement)
            )
        return reviewed

    def extra_rules(self) -> list[Rule]:
        if self._volunteered_spent:
            return []
        object.__setattr__(self, "_volunteered_spent", True)
        return list(self.volunteered)


@dataclass
class CallbackPolicy(ExpertPolicy):
    """Delegate each decision to a callable — handy in tests."""

    callback: Callable[[MatchCandidate], ExpertDecision]

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:
        return [
            ReviewedCandidate(c, self.callback(c)) for c in candidates
        ]


class InteractivePolicy(ExpertPolicy):
    """A human at the terminal: y / n / m(odify) per suggestion."""

    def review(
        self, candidates: Iterable[MatchCandidate]
    ) -> list[ReviewedCandidate]:  # pragma: no cover - interactive
        from repro.core.rules import parse_rule

        reviewed: list[ReviewedCandidate] = []
        for candidate in candidates:
            print(
                f"suggest [{candidate.score:.2f} {candidate.matcher}] "
                f"{candidate.rule}   ({candidate.reason})"
            )
            answer = input("accept? [y/n/m] ").strip().lower()
            if answer == "y":
                reviewed.append(
                    ReviewedCandidate(candidate, ExpertDecision.ACCEPT)
                )
            elif answer == "m":
                replacement = parse_rule(input("replacement rule: "))
                reviewed.append(
                    ReviewedCandidate(
                        candidate, ExpertDecision.MODIFY, replacement
                    )
                )
            else:
                reviewed.append(
                    ReviewedCandidate(candidate, ExpertDecision.REJECT)
                )
        return reviewed
