"""SKAT — the Semantic Knowledge Articulation Tool (paper §2.4).

"Articulation rules are proposed by SKAT using expert rules and other
external knowledge sources or semantic lexicons (e.g., Wordnet) and
verified by the expert. ... This process is iteratively repeated until
the expert is satisfied with the generated articulation."

:class:`SkatEngine` runs a pipeline of *matchers* over two source
ontologies.  Each matcher proposes scored rule candidates:

* :class:`ExactLabelMatcher`      — identical normalized labels;
* :class:`SynonymMatcher`         — labels sharing a lexicon synset;
* :class:`HypernymMatcher`        — lexicon says one term specializes
  the other (produces a *directed* rule);
* :class:`StructuralMatcher`      — unmatched label pairs whose graph
  neighborhoods align with already-proposed pairs.

:func:`articulate_with_expert` is the full §2.4 loop: propose → expert
review → generate → infer → propose again, to fixpoint.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import (
    ArticulationRuleSet,
    ImplicationRule,
    Rule,
    TermOperand,
    TermRef,
)
from repro.inference.engine import OntologyInferenceEngine
from repro.lexicon.expert import (
    ExpertPolicy,
    MatchCandidate,
    ReviewedCandidate,
)
from repro.lexicon.wordnet import MiniWordNet, normalize_lemma, seed_lexicon

__all__ = [
    "Matcher",
    "ExactLabelMatcher",
    "SynonymMatcher",
    "HypernymMatcher",
    "StructuralMatcher",
    "SkatEngine",
    "articulate_with_expert",
]


def _simple_rule(
    o1: str, t1: str, o2: str, t2: str, *, source: str = "skat"
) -> ImplicationRule:
    return ImplicationRule(
        (TermOperand(TermRef(o1, t1)), TermOperand(TermRef(o2, t2))),
        source=source,
    )


def _equivalence_rules(
    o1: str, t1: str, o2: str, t2: str
) -> list[ImplicationRule]:
    """Equivalence is two directed rules (SI cycles express it, §4.1)."""
    return [
        _simple_rule(o1, t1, o2, t2),
        _simple_rule(o2, t2, o1, t1),
    ]


class Matcher:
    """One heuristic proposing candidates between two ontologies."""

    name = "matcher"

    def propose(
        self, o1: Ontology, o2: Ontology
    ) -> list[MatchCandidate]:
        raise NotImplementedError


class ExactLabelMatcher(Matcher):
    """Identical normalized labels suggest equivalent concepts."""

    name = "exact"

    def __init__(self, *, score: float = 0.95) -> None:
        self.score = score

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        by_norm: dict[str, list[str]] = {}
        for term in o2.terms():
            by_norm.setdefault(normalize_lemma(term), []).append(term)
        candidates: list[MatchCandidate] = []
        for term1 in o1.terms():
            for term2 in by_norm.get(normalize_lemma(term1), ()):
                for rule in _equivalence_rules(o1.name, term1, o2.name, term2):
                    candidates.append(
                        MatchCandidate(
                            rule,
                            self.score,
                            self.name,
                            f"labels {term1!r} / {term2!r} normalize "
                            "identically",
                        )
                    )
        return candidates


class SynonymMatcher(Matcher):
    """Labels sharing a lexicon synset suggest equivalent concepts."""

    name = "synonym"

    def __init__(
        self, lexicon: MiniWordNet | None = None, *, score: float = 0.85
    ) -> None:
        self.lexicon = lexicon if lexicon is not None else seed_lexicon()
        self.score = score

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        candidates: list[MatchCandidate] = []
        terms2 = list(o2.terms())
        for term1 in o1.terms():
            if not self.lexicon.knows(term1):
                continue
            for term2 in terms2:
                if normalize_lemma(term1) == normalize_lemma(term2):
                    continue  # the exact matcher owns this pair
                if self.lexicon.are_synonyms(term1, term2):
                    for rule in _equivalence_rules(
                        o1.name, term1, o2.name, term2
                    ):
                        candidates.append(
                            MatchCandidate(
                                rule,
                                self.score,
                                self.name,
                                f"{term1!r} and {term2!r} share a synset",
                            )
                        )
        return candidates


class HypernymMatcher(Matcher):
    """Lexicon hypernymy suggests a *directed* specialization rule.

    ``o1:Car => o2:Vehicle`` when the lexicon derives car from vehicle.
    The score decays with hypernym distance — a grandparent is a weaker
    suggestion than a parent.
    """

    name = "hypernym"

    def __init__(
        self,
        lexicon: MiniWordNet | None = None,
        *,
        base_score: float = 0.75,
    ) -> None:
        self.lexicon = lexicon if lexicon is not None else seed_lexicon()
        self.base_score = base_score

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        candidates: list[MatchCandidate] = []
        terms1 = [t for t in o1.terms() if self.lexicon.knows(t)]
        terms2 = [t for t in o2.terms() if self.lexicon.knows(t)]
        for term1 in terms1:
            for term2 in terms2:
                if self.lexicon.are_synonyms(term1, term2):
                    continue
                if self.lexicon.is_hyponym_of(term1, term2):
                    similarity = self.lexicon.similarity(term1, term2)
                    candidates.append(
                        MatchCandidate(
                            _simple_rule(o1.name, term1, o2.name, term2),
                            self.base_score * max(similarity, 0.5),
                            self.name,
                            f"lexicon derives {term1!r} from {term2!r}",
                        )
                    )
                elif self.lexicon.is_hyponym_of(term2, term1):
                    similarity = self.lexicon.similarity(term1, term2)
                    candidates.append(
                        MatchCandidate(
                            _simple_rule(o2.name, term2, o1.name, term1),
                            self.base_score * max(similarity, 0.5),
                            self.name,
                            f"lexicon derives {term2!r} from {term1!r}",
                        )
                    )
        return candidates


class StructuralMatcher(Matcher):
    """Neighborhood agreement proposes pairs the lexicon cannot see.

    Two unmatched terms whose graph neighbors are largely matched to
    each other probably denote the same concept (the classic similarity
    -flooding intuition, scaled down).  Runs over the candidates of the
    lexical matchers, so it must be placed after them in the pipeline.
    """

    name = "structural"

    def __init__(
        self,
        seeds: Sequence[Matcher] | None = None,
        *,
        min_overlap: float = 0.5,
        score: float = 0.6,
    ) -> None:
        self.seeds = list(seeds) if seeds is not None else [
            ExactLabelMatcher(),
            SynonymMatcher(),
        ]
        self.min_overlap = min_overlap
        self.score = score

    @staticmethod
    def _neighbors(ontology: Ontology, term: str) -> set[str]:
        graph = ontology.graph
        return graph.successors(term) | graph.predecessors(term)

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        anchor_pairs: set[tuple[str, str]] = set()
        for seed in self.seeds:
            for candidate in seed.propose(o1, o2):
                rule = candidate.rule
                if isinstance(rule, ImplicationRule) and rule.is_simple():
                    first, last = rule.steps[0], rule.steps[-1]
                    assert isinstance(first, TermOperand)
                    assert isinstance(last, TermOperand)
                    if (
                        first.ref.ontology == o1.name
                        and last.ref.ontology == o2.name
                    ):
                        anchor_pairs.add((first.ref.term, last.ref.term))
                    elif (
                        first.ref.ontology == o2.name
                        and last.ref.ontology == o1.name
                    ):
                        anchor_pairs.add((last.ref.term, first.ref.term))
        matched1 = {a for a, _ in anchor_pairs}
        matched2 = {b for _, b in anchor_pairs}

        candidates: list[MatchCandidate] = []
        for term1 in o1.terms():
            if term1 in matched1:
                continue
            neigh1 = self._neighbors(o1, term1)
            if not neigh1:
                continue
            for term2 in o2.terms():
                if term2 in matched2:
                    continue
                neigh2 = self._neighbors(o2, term2)
                if not neigh2:
                    continue
                aligned = sum(
                    1
                    for a, b in anchor_pairs
                    if a in neigh1 and b in neigh2
                )
                overlap = aligned / min(len(neigh1), len(neigh2))
                if overlap >= self.min_overlap:
                    for rule in _equivalence_rules(
                        o1.name, term1, o2.name, term2
                    ):
                        candidates.append(
                            MatchCandidate(
                                rule,
                                self.score * overlap,
                                self.name,
                                f"{aligned} aligned neighbor pair(s) "
                                f"around {term1!r} / {term2!r}",
                            )
                        )
        return candidates


@dataclass
class SkatEngine:
    """The suggestion pipeline: run matchers, dedup, rank."""

    matchers: list[Matcher] = field(default_factory=list)

    @classmethod
    def default(cls, lexicon: MiniWordNet | None = None) -> "SkatEngine":
        lexicon = lexicon if lexicon is not None else seed_lexicon()
        lexical = [
            ExactLabelMatcher(),
            SynonymMatcher(lexicon),
            HypernymMatcher(lexicon),
        ]
        return cls(
            matchers=[
                *lexical,
                StructuralMatcher(seeds=lexical[:2]),
            ]
        )

    def propose(
        self,
        o1: Ontology,
        o2: Ontology,
        *,
        exclude: Iterable[Rule] = (),
    ) -> list[MatchCandidate]:
        """Ranked, de-duplicated candidates, minus ``exclude`` rules."""
        excluded = {str(rule) for rule in exclude}
        best: dict[str, MatchCandidate] = {}
        for matcher in self.matchers:
            for candidate in matcher.propose(o1, o2):
                key = candidate.key()
                if key in excluded:
                    continue
                current = best.get(key)
                if current is None or candidate.score > current.score:
                    best[key] = candidate
        return sorted(best.values(), key=lambda c: (-c.score, c.key()))


def articulate_with_expert(
    o1: Ontology,
    o2: Ontology,
    expert: ExpertPolicy,
    *,
    skat: SkatEngine | None = None,
    name: str = "articulation",
    max_rounds: int = 10,
    use_inference: bool = True,
) -> tuple[Articulation, list[ReviewedCandidate]]:
    """The full §2.4 loop; returns the articulation and the audit trail.

    Each round: SKAT proposes (excluding rules already applied), the
    expert reviews, accepted rules extend the articulation, and the
    inference engine derives further rule suggestions from the combined
    knowledge.  Stops when a round applies nothing new.
    """
    skat = skat if skat is not None else SkatEngine.default()
    generator = ArticulationGenerator([o1, o2], name=name)
    articulation = generator.generate(ArticulationRuleSet())
    audit: list[ReviewedCandidate] = []

    volunteered = ArticulationRuleSet()
    volunteered.extend(expert.extra_rules())
    generator.extend(articulation, volunteered)

    # One inference engine lives across rounds: each round feeds only
    # the newly accepted rules' facts through incremental (delta)
    # saturation instead of rebuilding and re-saturating from scratch.
    # Suggestions never need explain(), so derivation recording is off.
    engine: OntologyInferenceEngine | None = None
    for _ in range(max_rounds):
        candidates = skat.propose(o1, o2, exclude=list(articulation.rules))
        if use_inference and len(articulation.rules):
            if engine is None:
                engine = OntologyInferenceEngine.from_articulation(
                    articulation, record_derivations=False
                )
            else:
                engine.refresh_from_articulation(articulation)
            for derived in engine.derived_rules():
                if derived not in articulation.rules:
                    candidates.append(
                        MatchCandidate(
                            derived,
                            0.7,
                            "inference",
                            "derived from accepted rules and source "
                            "structure",
                        )
                    )
        if not candidates:
            break
        reviewed = expert.review(candidates)
        audit.extend(reviewed)
        accepted = ArticulationRuleSet()
        for review in reviewed:
            rule = review.accepted_rule()
            if rule is not None:
                accepted.add(rule)
        applied = generator.extend(articulation, accepted)
        if applied == 0:
            break
    return articulation, audit
