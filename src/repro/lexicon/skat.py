"""SKAT — the Semantic Knowledge Articulation Tool (paper §2.4).

"Articulation rules are proposed by SKAT using expert rules and other
external knowledge sources or semantic lexicons (e.g., Wordnet) and
verified by the expert. ... This process is iteratively repeated until
the expert is satisfied with the generated articulation."

:class:`SkatEngine` runs a pipeline of *matchers* over two source
ontologies.  Each matcher proposes scored rule candidates:

* :class:`ExactLabelMatcher`      — identical normalized labels;
* :class:`SynonymMatcher`         — labels sharing a lexicon synset;
* :class:`HypernymMatcher`        — lexicon says one term specializes
  the other (produces a *directed* rule);
* :class:`StructuralMatcher`      — unmatched label pairs whose graph
  neighborhoods align with already-proposed pairs.

Every matcher runs **blocked** by default: an inverted index — from
normalized lemma, synset id, or anchor-neighbor signature to candidate
terms — generates exactly the pairs that can match, so the pairs a
matcher examines grow with its *output*, not with ``|o1| x |o2|``.
The pre-index all-pairs loops are preserved behind
``blocking=False`` as the parity baseline; a matcher records the
pairs it examined in ``last_pairs`` and :meth:`SkatEngine.propose`
aggregates them into ``last_stats`` for the benchmarks.

:func:`articulate_with_expert` is the full §2.4 loop: propose → expert
review → generate → infer → propose again, to fixpoint.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import (
    ArticulationRuleSet,
    ImplicationRule,
    Rule,
    TermOperand,
    TermRef,
)
from repro.inference.engine import OntologyInferenceEngine
from repro.lexicon.expert import (
    ExpertPolicy,
    MatchCandidate,
    ReviewedCandidate,
)
from repro.lexicon.wordnet import MiniWordNet, normalize_lemma, seed_lexicon

__all__ = [
    "Matcher",
    "ExactLabelMatcher",
    "SynonymMatcher",
    "HypernymMatcher",
    "StructuralMatcher",
    "SkatEngine",
    "articulate_with_expert",
]


def _simple_rule(
    o1: str, t1: str, o2: str, t2: str, *, source: str = "skat"
) -> ImplicationRule:
    return ImplicationRule(
        (TermOperand(TermRef(o1, t1)), TermOperand(TermRef(o2, t2))),
        source=source,
    )


def _equivalence_rules(
    o1: str, t1: str, o2: str, t2: str
) -> list[ImplicationRule]:
    """Equivalence is two directed rules (SI cycles express it, §4.1)."""
    return [
        _simple_rule(o1, t1, o2, t2),
        _simple_rule(o2, t2, o1, t1),
    ]


class Matcher:
    """One heuristic proposing candidates between two ontologies.

    ``last_pairs`` records how many term pairs the previous
    :meth:`propose` call actually examined — the quantity the blocking
    indexes drive sub-quadratic.
    """

    name = "matcher"
    last_pairs: int = 0

    def propose(
        self, o1: Ontology, o2: Ontology
    ) -> list[MatchCandidate]:
        raise NotImplementedError


class ExactLabelMatcher(Matcher):
    """Identical normalized labels suggest equivalent concepts."""

    name = "exact"

    def __init__(self, *, score: float = 0.95, blocking: bool = True) -> None:
        self.score = score
        self.blocking = blocking

    def _emit(self, o1: Ontology, term1: str, o2: Ontology, term2: str):
        reason = f"labels {term1!r} / {term2!r} normalize identically"
        return [
            MatchCandidate(rule, self.score, self.name, reason)
            for rule in _equivalence_rules(o1.name, term1, o2.name, term2)
        ]

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        if not self.blocking:
            return self._propose_scan(o1, o2)
        by_norm: dict[str, list[str]] = {}
        for term in o2.terms():
            by_norm.setdefault(normalize_lemma(term), []).append(term)
        candidates: list[MatchCandidate] = []
        self.last_pairs = 0
        for term1 in o1.terms():
            for term2 in by_norm.get(normalize_lemma(term1), ()):
                self.last_pairs += 1
                candidates.extend(self._emit(o1, term1, o2, term2))
        return candidates

    def _propose_scan(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        """All-pairs baseline: compare every ``(term1, term2)``."""
        candidates: list[MatchCandidate] = []
        terms2 = list(o2.terms())
        self.last_pairs = 0
        for term1 in o1.terms():
            norm1 = normalize_lemma(term1)
            for term2 in terms2:
                self.last_pairs += 1
                if norm1 == normalize_lemma(term2):
                    candidates.extend(self._emit(o1, term1, o2, term2))
        return candidates


class SynonymMatcher(Matcher):
    """Labels sharing a lexicon synset suggest equivalent concepts."""

    name = "synonym"

    def __init__(
        self,
        lexicon: MiniWordNet | None = None,
        *,
        score: float = 0.85,
        blocking: bool = True,
    ) -> None:
        self.lexicon = lexicon if lexicon is not None else seed_lexicon()
        self.score = score
        self.blocking = blocking

    def _emit(self, o1: Ontology, term1: str, o2: Ontology, term2: str):
        reason = f"{term1!r} and {term2!r} share a synset"
        return [
            MatchCandidate(rule, self.score, self.name, reason)
            for rule in _equivalence_rules(o1.name, term1, o2.name, term2)
        ]

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        if not self.blocking:
            return self._propose_scan(o1, o2)
        # Blocking key: synset id.  Two terms are synonyms iff they
        # share a synset, so indexing o2's terms by synset id generates
        # exactly the synonym pairs — never the full cross product.
        by_synset: dict[str, list[str]] = {}
        for term2 in o2.terms():
            for sid in self.lexicon.synset_ids(term2):
                by_synset.setdefault(sid, []).append(term2)
        candidates: list[MatchCandidate] = []
        self.last_pairs = 0
        for term1 in o1.terms():
            sids = self.lexicon.synset_ids(term1)
            if not sids:
                continue
            norm1 = normalize_lemma(term1)
            seen: set[str] = set()
            for sid in sids:
                for term2 in by_synset.get(sid, ()):
                    if term2 in seen:
                        continue
                    seen.add(term2)
                    self.last_pairs += 1
                    if norm1 == normalize_lemma(term2):
                        continue  # the exact matcher owns this pair
                    candidates.extend(self._emit(o1, term1, o2, term2))
        return candidates

    def _propose_scan(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        """All-pairs baseline: ``are_synonyms`` on every pair."""
        candidates: list[MatchCandidate] = []
        terms2 = list(o2.terms())
        self.last_pairs = 0
        for term1 in o1.terms():
            if not self.lexicon.knows(term1):
                continue
            for term2 in terms2:
                self.last_pairs += 1
                if normalize_lemma(term1) == normalize_lemma(term2):
                    continue  # the exact matcher owns this pair
                if self.lexicon.are_synonyms(term1, term2):
                    candidates.extend(self._emit(o1, term1, o2, term2))
        return candidates


class HypernymMatcher(Matcher):
    """Lexicon hypernymy suggests a *directed* specialization rule.

    ``o1:Car => o2:Vehicle`` when the lexicon derives car from vehicle.
    The score decays with hypernym distance — a grandparent is a weaker
    suggestion than a parent.
    """

    name = "hypernym"

    def __init__(
        self,
        lexicon: MiniWordNet | None = None,
        *,
        base_score: float = 0.75,
        blocking: bool = True,
    ) -> None:
        self.lexicon = lexicon if lexicon is not None else seed_lexicon()
        self.base_score = base_score
        self.blocking = blocking

    def _emit_pair(
        self, o1: Ontology, term1: str, o2: Ontology, term2: str,
        hyp12: bool, hyp21: bool,
    ) -> MatchCandidate | None:
        """One directed suggestion per pair, specific side first.

        Mirrors the baseline's if/elif: when hypernymy somehow holds in
        both directions, the ``o1 -> o2`` reading wins.
        """
        if hyp12:
            similarity = self.lexicon.similarity(term1, term2)
            return MatchCandidate(
                _simple_rule(o1.name, term1, o2.name, term2),
                self.base_score * max(similarity, 0.5),
                self.name,
                f"lexicon derives {term1!r} from {term2!r}",
            )
        if hyp21:
            similarity = self.lexicon.similarity(term1, term2)
            return MatchCandidate(
                _simple_rule(o2.name, term2, o1.name, term1),
                self.base_score * max(similarity, 0.5),
                self.name,
                f"lexicon derives {term2!r} from {term1!r}",
            )
        return None

    def propose(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        if not self.blocking:
            return self._propose_scan(o1, o2)
        lexicon = self.lexicon
        # Blocking key: synset id.  term1 is a hyponym of term2 iff the
        # hypernym closure of term1's synsets meets term2's synsets, so
        # walking each term's (memoized) closure against a synset-id
        # index of the *other* side's terms enumerates exactly the
        # hypernym-related pairs, in both directions.
        ids1 = {t: lexicon.synset_ids(t) for t in o1.terms()}
        ids2 = {t: lexicon.synset_ids(t) for t in o2.terms()}
        index1: dict[str, list[str]] = {}
        for term1, sids in ids1.items():
            for sid in sids:
                index1.setdefault(sid, []).append(term1)
        index2: dict[str, list[str]] = {}
        for term2, sids in ids2.items():
            for sid in sids:
                index2.setdefault(sid, []).append(term2)

        # (term1, term2) -> [hyp12, hyp21]
        related: dict[tuple[str, str], list[bool]] = {}
        for term1, sids in ids1.items():
            if not sids:
                continue
            closure: set[str] = set()
            for sid in sids:
                closure |= lexicon.hypernym_closure(sid)
            for ancestor in closure:
                for term2 in index2.get(ancestor, ()):
                    flags = related.setdefault((term1, term2), [False, False])
                    flags[0] = True
        for term2, sids in ids2.items():
            if not sids:
                continue
            closure = set()
            for sid in sids:
                closure |= lexicon.hypernym_closure(sid)
            for ancestor in closure:
                for term1 in index1.get(ancestor, ()):
                    flags = related.setdefault((term1, term2), [False, False])
                    flags[1] = True

        self.last_pairs = len(related)
        candidates: list[MatchCandidate] = []
        for (term1, term2), (hyp12, hyp21) in sorted(related.items()):
            if lexicon.are_synonyms(term1, term2):
                continue
            candidate = self._emit_pair(o1, term1, o2, term2, hyp12, hyp21)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _propose_scan(self, o1: Ontology, o2: Ontology) -> list[MatchCandidate]:
        """All-pairs baseline: hypernym tests on every known pair."""
        candidates: list[MatchCandidate] = []
        terms1 = [t for t in o1.terms() if self.lexicon.knows(t)]
        terms2 = [t for t in o2.terms() if self.lexicon.knows(t)]
        self.last_pairs = 0
        for term1 in terms1:
            for term2 in terms2:
                self.last_pairs += 1
                if self.lexicon.are_synonyms(term1, term2):
                    continue
                candidate = self._emit_pair(
                    o1,
                    term1,
                    o2,
                    term2,
                    self.lexicon.is_hyponym_of(term1, term2),
                    self.lexicon.is_hyponym_of(term2, term1),
                )
                if candidate is not None:
                    candidates.append(candidate)
        return candidates


class StructuralMatcher(Matcher):
    """Neighborhood agreement proposes pairs the lexicon cannot see.

    Two unmatched terms whose graph neighbors are largely matched to
    each other probably denote the same concept (the classic similarity
    -flooding intuition, scaled down).  Runs over the candidates of the
    lexical matchers, so it must be placed after them in the pipeline.
    """

    name = "structural"

    def __init__(
        self,
        seeds: Sequence[Matcher] | None = None,
        *,
        min_overlap: float = 0.5,
        score: float = 0.6,
        blocking: bool = True,
    ) -> None:
        self.seeds = list(seeds) if seeds is not None else [
            ExactLabelMatcher(),
            SynonymMatcher(),
        ]
        self.min_overlap = min_overlap
        self.score = score
        self.blocking = blocking

    @staticmethod
    def _neighbors(ontology: Ontology, term: str) -> set[str]:
        graph = ontology.graph
        return graph.successors(term) | graph.predecessors(term)

    def _anchor_pairs(
        self,
        o1: Ontology,
        o2: Ontology,
        seed_candidates: Sequence[MatchCandidate] | None = None,
    ) -> set[tuple[str, str]]:
        """Anchor pairs from the seed matchers' proposals.

        ``seed_candidates`` lets a pipeline that already ran the seed
        matchers (``SkatEngine.propose``) hand their output over
        instead of this matcher re-proposing the same pairs.
        """
        if seed_candidates is None:
            seed_candidates = [
                candidate
                for seed in self.seeds
                for candidate in seed.propose(o1, o2)
            ]
        anchor_pairs: set[tuple[str, str]] = set()
        for candidate in seed_candidates:
            rule = candidate.rule
            if isinstance(rule, ImplicationRule) and rule.is_simple():
                first, last = rule.steps[0], rule.steps[-1]
                assert isinstance(first, TermOperand)
                assert isinstance(last, TermOperand)
                if (
                    first.ref.ontology == o1.name
                    and last.ref.ontology == o2.name
                ):
                    anchor_pairs.add((first.ref.term, last.ref.term))
                elif (
                    first.ref.ontology == o2.name
                    and last.ref.ontology == o1.name
                ):
                    anchor_pairs.add((last.ref.term, first.ref.term))
        return anchor_pairs

    def _emit(
        self, o1: Ontology, term1: str, o2: Ontology, term2: str,
        aligned: int, overlap: float,
    ) -> list[MatchCandidate]:
        reason = (
            f"{aligned} aligned neighbor pair(s) "
            f"around {term1!r} / {term2!r}"
        )
        return [
            MatchCandidate(rule, self.score * overlap, self.name, reason)
            for rule in _equivalence_rules(o1.name, term1, o2.name, term2)
        ]

    def propose(
        self,
        o1: Ontology,
        o2: Ontology,
        *,
        seed_candidates: Sequence[MatchCandidate] | None = None,
    ) -> list[MatchCandidate]:
        # A pair needs aligned >= 1 to clear any positive threshold, so
        # blocking by anchor neighborhoods is exact only for
        # min_overlap > 0; a zero threshold needs the full scan.
        if not self.blocking or self.min_overlap <= 0:
            return self._propose_scan(o1, o2, seed_candidates)
        anchor_pairs = self._anchor_pairs(o1, o2, seed_candidates)
        matched1 = {a for a, _ in anchor_pairs}
        matched2 = {b for _, b in anchor_pairs}

        # Blocking key: the anchor pair itself.  Candidate (t1, t2)
        # pairs are generated from each anchor's neighborhoods, and the
        # per-pair count of generating anchors *is* the alignment
        # score, so zero-aligned pairs are never materialized.
        aligned_count: dict[tuple[str, str], int] = {}
        neigh1_cache: dict[str, set[str]] = {}
        neigh2_cache: dict[str, set[str]] = {}
        for a, b in anchor_pairs:
            if not o1.has_term(a) or not o2.has_term(b):
                continue
            for term1 in self._neighbors(o1, a):
                if term1 in matched1:
                    continue
                for term2 in self._neighbors(o2, b):
                    if term2 in matched2:
                        continue
                    key = (term1, term2)
                    aligned_count[key] = aligned_count.get(key, 0) + 1

        self.last_pairs = len(aligned_count)
        candidates: list[MatchCandidate] = []
        for (term1, term2), aligned in sorted(aligned_count.items()):
            neigh1 = neigh1_cache.get(term1)
            if neigh1 is None:
                neigh1 = neigh1_cache[term1] = self._neighbors(o1, term1)
            neigh2 = neigh2_cache.get(term2)
            if neigh2 is None:
                neigh2 = neigh2_cache[term2] = self._neighbors(o2, term2)
            overlap = aligned / min(len(neigh1), len(neigh2))
            if overlap >= self.min_overlap:
                candidates.extend(
                    self._emit(o1, term1, o2, term2, aligned, overlap)
                )
        return candidates

    def _propose_scan(
        self,
        o1: Ontology,
        o2: Ontology,
        seed_candidates: Sequence[MatchCandidate] | None = None,
    ) -> list[MatchCandidate]:
        """All-pairs baseline: score every unmatched pair."""
        anchor_pairs = self._anchor_pairs(o1, o2, seed_candidates)
        matched1 = {a for a, _ in anchor_pairs}
        matched2 = {b for _, b in anchor_pairs}

        candidates: list[MatchCandidate] = []
        self.last_pairs = 0
        for term1 in o1.terms():
            if term1 in matched1:
                continue
            neigh1 = self._neighbors(o1, term1)
            if not neigh1:
                continue
            for term2 in o2.terms():
                if term2 in matched2:
                    continue
                neigh2 = self._neighbors(o2, term2)
                if not neigh2:
                    continue
                self.last_pairs += 1
                aligned = sum(
                    1
                    for a, b in anchor_pairs
                    if a in neigh1 and b in neigh2
                )
                overlap = aligned / min(len(neigh1), len(neigh2))
                if overlap >= self.min_overlap:
                    candidates.extend(
                        self._emit(o1, term1, o2, term2, aligned, overlap)
                    )
        return candidates


@dataclass
class SkatEngine:
    """The suggestion pipeline: run matchers, dedup, rank.

    ``last_stats`` (populated by :meth:`propose`) reports the
    candidate pairs each matcher examined against the all-pairs bound
    ``|o1| x |o2|`` — the quantity the blocking indexes keep
    sub-quadratic.
    """

    matchers: list[Matcher] = field(default_factory=list)
    last_stats: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def default(
        cls, lexicon: MiniWordNet | None = None, *, blocking: bool = True
    ) -> "SkatEngine":
        lexicon = lexicon if lexicon is not None else seed_lexicon()
        lexical = [
            ExactLabelMatcher(blocking=blocking),
            SynonymMatcher(lexicon, blocking=blocking),
            HypernymMatcher(lexicon, blocking=blocking),
        ]
        return cls(
            matchers=[
                *lexical,
                StructuralMatcher(seeds=lexical[:2], blocking=blocking),
            ]
        )

    def propose(
        self,
        o1: Ontology,
        o2: Ontology,
        *,
        exclude: Iterable[Rule] = (),
    ) -> list[MatchCandidate]:
        """Ranked, de-duplicated candidates, minus ``exclude`` rules."""
        excluded = {str(rule) for rule in exclude}
        best: dict[str, MatchCandidate] = {}
        per_matcher: dict[str, int] = {}
        proposed_by_matcher: dict[int, list[MatchCandidate]] = {}
        for matcher in self.matchers:
            if isinstance(matcher, StructuralMatcher) and all(
                id(seed) in proposed_by_matcher for seed in matcher.seeds
            ):
                # The structural matcher's seeds already ran in this
                # pipeline: hand their proposals over instead of having
                # the matcher re-propose the same pairs (so the stats
                # below count each examined pair exactly once).
                proposed = matcher.propose(
                    o1,
                    o2,
                    seed_candidates=[
                        candidate
                        for seed in matcher.seeds
                        for candidate in proposed_by_matcher[id(seed)]
                    ],
                )
            else:
                proposed = matcher.propose(o1, o2)
            proposed_by_matcher[id(matcher)] = proposed
            per_matcher[matcher.name] = (
                per_matcher.get(matcher.name, 0) + matcher.last_pairs
            )
            for candidate in proposed:
                key = candidate.key()
                if key in excluded:
                    continue
                current = best.get(key)
                if current is None or candidate.score > current.score:
                    best[key] = candidate
        self.last_stats = {
            "pairs_by_matcher": per_matcher,
            "candidate_pairs": sum(per_matcher.values()),
            "all_pairs": o1.term_count() * o2.term_count(),
        }
        return sorted(best.values(), key=lambda c: (-c.score, c.key()))


def articulate_with_expert(
    o1: Ontology,
    o2: Ontology,
    expert: ExpertPolicy,
    *,
    skat: SkatEngine | None = None,
    name: str = "articulation",
    max_rounds: int = 10,
    use_inference: bool = True,
) -> tuple[Articulation, list[ReviewedCandidate]]:
    """The full §2.4 loop; returns the articulation and the audit trail.

    Each round: SKAT proposes (excluding rules already applied), the
    expert reviews, accepted rules extend the articulation, and the
    inference engine derives further rule suggestions from the combined
    knowledge.  Stops when a round applies nothing new.
    """
    skat = skat if skat is not None else SkatEngine.default()
    generator = ArticulationGenerator([o1, o2], name=name)
    articulation = generator.generate(ArticulationRuleSet())
    audit: list[ReviewedCandidate] = []

    volunteered = ArticulationRuleSet()
    volunteered.extend(expert.extra_rules())
    generator.extend(articulation, volunteered)

    # One inference engine lives across rounds: each round feeds only
    # the newly accepted rules' facts through incremental (delta)
    # saturation instead of rebuilding and re-saturating from scratch.
    # Suggestions never need explain(), so derivation recording is off.
    engine: OntologyInferenceEngine | None = None
    for _ in range(max_rounds):
        candidates = skat.propose(o1, o2, exclude=list(articulation.rules))
        if use_inference and len(articulation.rules):
            if engine is None:
                engine = OntologyInferenceEngine.from_articulation(
                    articulation, record_derivations=False
                )
            else:
                engine.refresh_from_articulation(articulation)
            for derived in engine.derived_rules():
                if derived not in articulation.rules:
                    candidates.append(
                        MatchCandidate(
                            derived,
                            0.7,
                            "inference",
                            "derived from accepted rules and source "
                            "structure",
                        )
                    )
        if not candidates:
            break
        reviewed = expert.review(candidates)
        audit.extend(reviewed)
        accepted = ArticulationRuleSet()
        for review in reviewed:
            rule = review.accepted_rule()
            if rule is not None:
                accepted.add(rule)
        applied = generator.extend(articulation, accepted)
        if applied == 0:
            break
    return articulation, audit
