"""Synthetic ontology families with known ground-truth alignment.

The scalability, maintenance, composition and SKAT-quality experiments
need many source ontologies whose semantic overlap is *controlled* and
*known*.  The generator builds them from a shared **concept universe**:

1. a random concept tree of ``universe_size`` concepts (each concept a
   node with a base name and a synonym family for per-source variants);
2. per source, a sample of concepts — a fraction ``overlap`` drawn
   from a designated shared core (concepts every source carries) and
   the rest private — connected by SubclassOf edges to the nearest
   sampled ancestor, plus attribute terms;
3. per-source *labels* for each concept: the base name, or a synonym
   variant, so sources disagree on vocabulary the way real ontologies
   do (``identical_fraction`` controls how often labels match exactly);
4. the ground-truth alignment (which source terms co-refer), exportable
   as articulation rules, as a baseline alignment, or as a lexicon for
   SKAT (optionally degraded with ``noise`` for the SKAT benchmark).

Everything is deterministic in ``seed``.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.ontology import Ontology, qualify
from repro.core.rules import (
    ArticulationRuleSet,
    HornClause,
    ImplicationRule,
    TermOperand,
    TermRef,
)
from repro.errors import OnionError
from repro.lexicon.wordnet import MiniWordNet

__all__ = [
    "WorkloadConfig",
    "Concept",
    "SyntheticWorkload",
    "WideProgram",
    "generate_workload",
    "wide_program",
]

# Label variants per concept: base plus distinct per-variant suffix
# morphology, so normalized forms differ across variants.
_VARIANT_STYLES = (
    "{base}",
    "{base}Item",
    "{base}Entry",
    "The{base}",
    "{base}Obj",
    "{base}Rec",
    "{base}Node",
    "{base}Elem",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic workload."""

    universe_size: int = 200
    n_sources: int = 2
    terms_per_source: int = 60
    overlap: float = 0.3  # fraction of each source drawn from the shared core
    attr_fraction: float = 0.25  # fraction of universe concepts that are attributes
    identical_fraction: float = 0.5  # shared concepts labeled identically
    seed: int = 7

    def __post_init__(self) -> None:
        if self.universe_size < 2:
            raise OnionError("universe_size must be at least 2")
        if not 0.0 <= self.overlap <= 1.0:
            raise OnionError("overlap must be in [0, 1]")
        if not 0.0 <= self.identical_fraction <= 1.0:
            raise OnionError("identical_fraction must be in [0, 1]")
        if self.terms_per_source > self.universe_size:
            raise OnionError(
                "terms_per_source cannot exceed universe_size"
            )
        if self.n_sources < 1:
            raise OnionError("need at least one source")


@dataclass(frozen=True)
class Concept:
    """One universe concept: identity, tree parent, role, labels."""

    index: int
    parent: int | None
    is_attribute: bool
    labels: tuple[str, ...]  # one label per variant style, labels[0] = base

    @property
    def base(self) -> str:
        return self.labels[0]


@dataclass
class SyntheticWorkload:
    """The generated sources plus everything derived from the truth."""

    config: WorkloadConfig
    concepts: list[Concept]
    sources: list[Ontology]
    # per source: concept index -> the label used in that source
    labels_by_source: list[dict[int, str]]
    shared_core: frozenset[int]

    # ------------------------------------------------------------------
    # ground truth exports
    # ------------------------------------------------------------------
    def co_referring(self, i: int, j: int) -> list[tuple[str, str]]:
        """(term_i, term_j) pairs denoting the same concept."""
        labels_i = self.labels_by_source[i]
        labels_j = self.labels_by_source[j]
        common = sorted(set(labels_i) & set(labels_j))
        return [(labels_i[c], labels_j[c]) for c in common]

    def truth_rules(
        self, i: int, j: int, *, bidirectional: bool = True
    ) -> ArticulationRuleSet:
        """Rules aligning every shared concept between two sources.

        ``bidirectional`` (default) states both directions — full
        equivalence, what a perfectly informed expert would assert.
        One direction suffices for interoperation (the generator's
        simple-rule semantics already creates an articulation copy
        equivalent to the consequence term), and is what the
        scalability experiments use as the minimal rule set.
        """
        rules = ArticulationRuleSet()
        name_i = self.sources[i].name
        name_j = self.sources[j].name
        for term_i, term_j in self.co_referring(i, j):
            rules.add(
                ImplicationRule(
                    (
                        TermOperand(TermRef(name_i, term_i)),
                        TermOperand(TermRef(name_j, term_j)),
                    ),
                    source="truth",
                )
            )
            if bidirectional:
                rules.add(
                    ImplicationRule(
                        (
                            TermOperand(TermRef(name_j, term_j)),
                            TermOperand(TermRef(name_i, term_i)),
                        ),
                        source="truth",
                    )
                )
        return rules

    def truth_alignment(self, i: int, j: int) -> list[tuple[str, str]]:
        """Qualified co-reference pairs, for the global-schema baseline."""
        name_i = self.sources[i].name
        name_j = self.sources[j].name
        return [
            (qualify(name_i, term_i), qualify(name_j, term_j))
            for term_i, term_j in self.co_referring(i, j)
        ]

    def lexicon(self, *, noise: float = 0.0, seed: int = 0) -> MiniWordNet:
        """A lexicon whose synsets are the concept synonym families.

        ``noise`` drops that fraction of concepts from the lexicon
        entirely — simulating vocabulary WordNet does not know — which
        degrades SKAT's synonym matcher in a controlled way.
        """
        rng = random.Random(seed)
        lexicon = MiniWordNet()
        for concept in self.concepts:
            if noise > 0.0 and rng.random() < noise:
                continue
            parent = (
                f"c{concept.parent}"
                if concept.parent is not None
                else None
            )
            lexicon.add_synset(
                f"c{concept.index}",
                list(dict.fromkeys(concept.labels)),
                hypernyms=(parent,) if parent else (),
            )
        return lexicon


def _build_universe(config: WorkloadConfig, rng: random.Random) -> list[Concept]:
    concepts: list[Concept] = []
    for index in range(config.universe_size):
        parent = rng.randrange(index) if index > 0 else None
        is_attribute = index > 0 and rng.random() < config.attr_fraction
        base = f"Concept{index}"
        labels = tuple(
            style.format(base=base) for style in _VARIANT_STYLES
        )
        concepts.append(Concept(index, parent, is_attribute, labels))
    return concepts


def _sample_source_concepts(
    config: WorkloadConfig,
    rng: random.Random,
    shared_core: list[int],
) -> list[int]:
    n_shared = min(
        len(shared_core), int(round(config.terms_per_source * config.overlap))
    )
    chosen = set(rng.sample(shared_core, n_shared)) if n_shared else set()
    private_pool = [
        index
        for index in range(config.universe_size)
        if index not in chosen
    ]
    n_private = config.terms_per_source - len(chosen)
    chosen.update(rng.sample(private_pool, n_private))
    return sorted(chosen)


def _nearest_sampled_ancestor(
    concept: Concept, concepts: list[Concept], sampled: set[int]
) -> int | None:
    cursor = concept.parent
    while cursor is not None:
        if cursor in sampled:
            return cursor
        cursor = concepts[cursor].parent
    return None


def generate_workload(config: WorkloadConfig) -> SyntheticWorkload:
    """Build the universe and every source ontology."""
    rng = random.Random(config.seed)
    concepts = _build_universe(config, rng)

    # The shared core: concepts available for cross-source overlap.
    core_size = max(1, int(config.universe_size * 0.5))
    shared_core = sorted(rng.sample(range(config.universe_size), core_size))

    sources: list[Ontology] = []
    labels_by_source: list[dict[int, str]] = []
    for source_index in range(config.n_sources):
        source_rng = random.Random(config.seed * 1000 + source_index)
        sampled = set(
            _sample_source_concepts(config, source_rng, shared_core)
        )
        onto = Ontology(f"src{source_index}")
        labels: dict[int, str] = {}
        for index in sorted(sampled):
            concept = concepts[index]
            if source_rng.random() < config.identical_fraction:
                label = concept.base
            else:
                variant = 1 + (
                    (index + source_index) % (len(concept.labels) - 1)
                )
                label = concept.labels[variant]
            # Synonym variants of two different concepts never collide
            # (labels embed the concept index), so ensure_term is safe.
            onto.ensure_term(label)
            labels[index] = label
        for index in sorted(sampled):
            concept = concepts[index]
            ancestor = _nearest_sampled_ancestor(concept, concepts, sampled)
            if ancestor is None:
                continue
            if concept.is_attribute:
                onto.add_attribute(labels[index], labels[ancestor])
            else:
                onto.add_subclass(labels[index], labels[ancestor])
        sources.append(onto)
        labels_by_source.append(labels)

    return SyntheticWorkload(
        config=config,
        concepts=concepts,
        sources=sources,
        labels_by_source=labels_by_source,
        shared_core=frozenset(shared_core),
    )


# ----------------------------------------------------------------------
# wide Horn programs: many mutually independent recursive families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WideProgram:
    """A Horn program whose stratum DAG is ``n_sccs`` independent
    two-stage chains.

    Family ``i`` owns two predicates: ``P{i}`` closes transitively
    over a ``scc_size``-fact chain (one recursive SCC), and ``Q{i}``
    lifts ``P{i}`` and closes symmetrically (a second recursive SCC
    depending on the first).  No predicate crosses families, so the
    parallel scheduler can saturate all ``2 * n_sccs`` strata with
    only the intra-family ordering constraint — the workload the
    speedup-vs-workers benchmark and the parallel parity suites
    measure against.
    """

    n_sccs: int
    scc_size: int
    clauses: tuple[HornClause, ...]
    facts: tuple[tuple[str, ...], ...]

    def closure_size(self) -> int:
        """Derivable facts at fixpoint (for sanity checks): per family,
        ``n(n+1)/2`` transitive ``P`` pairs, each lifted into ``Q``
        in both directions."""
        n = self.scc_size
        pairs = n * (n + 1) // 2
        return self.n_sccs * (pairs + 2 * pairs)


def wide_program(n_sccs: int, scc_size: int) -> WideProgram:
    """Build ``n_sccs`` independent recursive predicate families.

    Deterministic (no randomness to seed): family ``i`` gets the
    chain ``P{i}(c{i}_0, c{i}_1), ...`` of ``scc_size`` facts plus a
    transitivity clause on ``P{i}``, a lift ``Q{i} :- P{i}`` and a
    symmetry clause on ``Q{i}``.  Constants are namespaced per family,
    so fact partitions are disjoint too.
    """
    if n_sccs < 1:
        raise OnionError(f"n_sccs must be >= 1, got {n_sccs!r}")
    if scc_size < 1:
        raise OnionError(f"scc_size must be >= 1, got {scc_size!r}")
    clauses: list[HornClause] = []
    facts: list[tuple[str, ...]] = []
    for family in range(n_sccs):
        p, q = f"P{family}", f"Q{family}"
        clauses.append(
            HornClause((p, "?x", "?z"), ((p, "?x", "?y"), (p, "?y", "?z")))
        )
        clauses.append(HornClause((q, "?x", "?y"), ((p, "?x", "?y"),)))
        clauses.append(HornClause((q, "?y", "?x"), ((q, "?x", "?y"),)))
        for j in range(scc_size):
            facts.append((p, f"c{family}_{j}", f"c{family}_{j + 1}"))
    return WideProgram(
        n_sccs=n_sccs,
        scc_size=scc_size,
        clauses=tuple(clauses),
        facts=tuple(facts),
    )
