"""Workloads: the paper's Fig. 2 example, synthetic ontology families,
the churn model for maintenance experiments, the chaos harness that
replays churn under seeded fault injection, and the serving load
generator (Zipfian query mix + background churn + isolation audit)."""

from repro.workloads.chaos import (
    CHAOS_CLAUSES,
    ChaosResult,
    chaos_batches,
    run_chaos_campaign,
)
from repro.workloads.churn import (
    ChurnReport,
    ChurnRunResult,
    Mutation,
    apply_churn,
    run_churn_workload,
)
from repro.workloads.loadgen import (
    LoadClient,
    LoadReport,
    default_request_pool,
    run_load,
    zipf_weights,
)
from repro.workloads.generator import (
    Concept,
    SyntheticWorkload,
    WorkloadConfig,
    generate_workload,
)
from repro.workloads.paper_example import (
    ARTICULATION_NAME,
    EXPECTED_ARTICULATION_TERMS,
    EXPECTED_BRIDGES,
    EXPECTED_INTERNAL_EDGES,
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
    paper_rules,
)

__all__ = [
    "ARTICULATION_NAME",
    "CHAOS_CLAUSES",
    "ChaosResult",
    "ChurnReport",
    "ChurnRunResult",
    "Concept",
    "LoadClient",
    "LoadReport",
    "EXPECTED_ARTICULATION_TERMS",
    "EXPECTED_BRIDGES",
    "EXPECTED_INTERNAL_EDGES",
    "Mutation",
    "SyntheticWorkload",
    "WorkloadConfig",
    "apply_churn",
    "carrier_ontology",
    "chaos_batches",
    "default_request_pool",
    "factory_ontology",
    "generate_transport_articulation",
    "generate_workload",
    "paper_rules",
    "run_chaos_campaign",
    "run_churn_workload",
    "run_load",
    "zipf_weights",
]
