"""Workloads: the paper's Fig. 2 example, synthetic ontology families,
and the churn model for maintenance experiments."""

from repro.workloads.churn import (
    ChurnReport,
    ChurnRunResult,
    Mutation,
    apply_churn,
    run_churn_workload,
)
from repro.workloads.generator import (
    Concept,
    SyntheticWorkload,
    WorkloadConfig,
    generate_workload,
)
from repro.workloads.paper_example import (
    ARTICULATION_NAME,
    EXPECTED_ARTICULATION_TERMS,
    EXPECTED_BRIDGES,
    EXPECTED_INTERNAL_EDGES,
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
    paper_rules,
)

__all__ = [
    "ARTICULATION_NAME",
    "ChurnReport",
    "ChurnRunResult",
    "Concept",
    "EXPECTED_ARTICULATION_TERMS",
    "EXPECTED_BRIDGES",
    "EXPECTED_INTERNAL_EDGES",
    "Mutation",
    "SyntheticWorkload",
    "WorkloadConfig",
    "apply_churn",
    "carrier_ontology",
    "factory_ontology",
    "generate_transport_articulation",
    "generate_workload",
    "paper_rules",
    "run_churn_workload",
]
