"""Source churn for the maintenance experiment (paper §5.3, §6).

"Changes to portions of an ontology that are not articulated with
portions of another ontology can be made without affecting the rest of
the system.  This approach greatly reduces the cost of maintaining
applications that compose knowledge from a large number of sources
that are frequently updated."

:func:`apply_churn` mutates an ontology with a mix of realistic edits
(add a leaf term, delete a leaf term, add an edge, remove an edge) and
reports exactly which terms each edit touched, so the maintenance
benchmark can ask the articulation — via its covered-term set, i.e.
the complement of the difference operator — whether the edit requires
any articulation work at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.graph import Edge
from repro.core.ontology import Ontology
from repro.core.relations import SUBCLASS_OF

__all__ = ["Mutation", "ChurnReport", "apply_churn"]


@dataclass(frozen=True)
class Mutation:
    """One edit: its kind and the terms it touched."""

    kind: str  # add_term | delete_term | add_edge | delete_edge
    touched: tuple[str, ...]


@dataclass
class ChurnReport:
    """Everything a maintenance experiment needs about one churn batch."""

    mutations: list[Mutation] = field(default_factory=list)

    def touched_terms(self) -> set[str]:
        return {term for m in self.mutations for term in m.touched}

    def __len__(self) -> int:
        return len(self.mutations)


def _leaf_terms(ontology: Ontology) -> list[str]:
    """Terms with no incoming edges (nothing depends on them)."""
    graph = ontology.graph
    return sorted(
        term for term in graph.nodes() if not graph.in_edges(term)
    )


def apply_churn(
    ontology: Ontology,
    *,
    n_mutations: int,
    seed: int = 0,
    add_weight: float = 0.35,
    delete_weight: float = 0.25,
    edge_weight: float = 0.4,
) -> ChurnReport:
    """Apply ``n_mutations`` random edits in place; report what changed.

    Additions attach fresh leaf terms under random existing terms;
    deletions remove leaf terms; edge edits add or remove non-structural
    relationships between random pairs.  Weights control the mix.
    """
    rng = random.Random(seed)
    report = ChurnReport()
    counter = 0
    kinds = ["add_term", "delete_term", "add_edge"]
    weights = [add_weight, delete_weight, edge_weight]

    for _ in range(n_mutations):
        terms = sorted(ontology.terms())
        if len(terms) < 2:
            kind = "add_term"
        else:
            kind = rng.choices(kinds, weights)[0]

        if kind == "add_term":
            parent = rng.choice(terms) if terms else None
            new_term = f"Churn{seed}_{counter}"
            counter += 1
            ontology.ensure_term(new_term)
            touched = [new_term]
            if parent is not None:
                ontology.add_subclass(new_term, parent)
                touched.append(parent)
            report.mutations.append(Mutation("add_term", tuple(touched)))

        elif kind == "delete_term":
            leaves = _leaf_terms(ontology)
            if not leaves:
                continue
            victim = rng.choice(leaves)
            removed = ontology.remove_term(victim)
            touched = {victim}
            for edge in removed:
                touched.update((edge.source, edge.target))
            report.mutations.append(
                Mutation("delete_term", tuple(sorted(touched)))
            )

        else:  # add_edge (or delete one when a free edge exists)
            graph = ontology.graph
            free_edges = [
                e
                for e in graph.edges()
                if e.label not in (SUBCLASS_OF.code,)
            ]
            if free_edges and rng.random() < 0.4:
                edge = rng.choice(
                    sorted(
                        free_edges,
                        key=lambda e: (e.source, e.label, e.target),
                    )
                )
                graph.remove_edge(edge)
                report.mutations.append(
                    Mutation("delete_edge", (edge.source, edge.target))
                )
            else:
                source, target = rng.sample(terms, 2)
                label = rng.choice(["relatesTo", "uses", "partOf"])
                if not graph.has_edge(source, label, target):
                    graph.add_edge(source, label, target)
                report.mutations.append(
                    Mutation("add_edge", (source, target))
                )

    return report
