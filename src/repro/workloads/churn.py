"""Source churn for the maintenance experiment (paper §5.3, §6).

"Changes to portions of an ontology that are not articulated with
portions of another ontology can be made without affecting the rest of
the system.  This approach greatly reduces the cost of maintaining
applications that compose knowledge from a large number of sources
that are frequently updated."

:func:`apply_churn` mutates an ontology with a mix of realistic edits
(add a leaf term, delete a leaf term, add an edge, remove an edge) and
reports exactly which terms each edit touched, so the maintenance
benchmark can ask the articulation — via its covered-term set, i.e.
the complement of the difference operator — whether the edit requires
any articulation work at all.

:func:`run_churn_workload` drives whole churn *campaigns* end to end:
batches of source edits flow through the maintainer's classify/repair
pass and into one long-lived inference engine whose refreshes go
incremental for growth and through the DRed retraction pass for
shrinkage — or, as the baseline, into a from-scratch engine rebuild
per batch.  Both drivers answer the same deterministic probe queries,
so a regression test can assert retraction ≡ rebuild over the full
interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.graph import Edge
from repro.core.ontology import Ontology
from repro.core.relations import SUBCLASS_OF
from repro.errors import OnionError

__all__ = [
    "Mutation",
    "ChurnReport",
    "ChurnRunResult",
    "apply_churn",
    "run_churn_workload",
]


@dataclass(frozen=True)
class Mutation:
    """One edit: its kind and the terms it touched."""

    kind: str  # add_term | delete_term | add_edge | delete_edge
    touched: tuple[str, ...]


@dataclass
class ChurnReport:
    """Everything a maintenance experiment needs about one churn batch."""

    mutations: list[Mutation] = field(default_factory=list)

    def touched_terms(self) -> set[str]:
        return {term for m in self.mutations for term in m.touched}

    def __len__(self) -> int:
        return len(self.mutations)


def _leaf_terms(ontology: Ontology) -> list[str]:
    """Terms with no incoming edges (nothing depends on them)."""
    graph = ontology.graph
    return sorted(
        term for term in graph.nodes() if not graph.in_edges(term)
    )


def apply_churn(
    ontology: Ontology,
    *,
    n_mutations: int,
    seed: int = 0,
    add_weight: float = 0.35,
    delete_weight: float = 0.25,
    edge_weight: float = 0.4,
) -> ChurnReport:
    """Apply ``n_mutations`` random edits in place; report what changed.

    Additions attach fresh leaf terms under random existing terms;
    deletions remove leaf terms; edge edits add or remove non-structural
    relationships between random pairs.  Weights control the mix.
    """
    rng = random.Random(seed)
    report = ChurnReport()
    counter = 0
    kinds = ["add_term", "delete_term", "add_edge"]
    weights = [add_weight, delete_weight, edge_weight]

    for _ in range(n_mutations):
        terms = sorted(ontology.terms())
        if len(terms) < 2:
            kind = "add_term"
        else:
            kind = rng.choices(kinds, weights)[0]

        if kind == "add_term":
            parent = rng.choice(terms) if terms else None
            new_term = f"Churn{seed}_{counter}"
            counter += 1
            ontology.ensure_term(new_term)
            touched = [new_term]
            if parent is not None:
                ontology.add_subclass(new_term, parent)
                touched.append(parent)
            report.mutations.append(Mutation("add_term", tuple(touched)))

        elif kind == "delete_term":
            leaves = _leaf_terms(ontology)
            if not leaves:
                continue
            victim = rng.choice(leaves)
            removed = ontology.remove_term(victim)
            touched = {victim}
            for edge in removed:
                touched.update((edge.source, edge.target))
            report.mutations.append(
                Mutation("delete_term", tuple(sorted(touched)))
            )

        else:  # add_edge (or delete one when a free edge exists)
            graph = ontology.graph
            free_edges = [
                e
                for e in graph.edges()
                if e.label not in (SUBCLASS_OF.code,)
            ]
            if free_edges and rng.random() < 0.4:
                edge = rng.choice(
                    sorted(
                        free_edges,
                        key=lambda e: (e.source, e.label, e.target),
                    )
                )
                graph.remove_edge(edge)
                report.mutations.append(
                    Mutation("delete_edge", (edge.source, edge.target))
                )
            else:
                source, target = rng.sample(terms, 2)
                label = rng.choice(["relatesTo", "uses", "partOf"])
                if not graph.has_edge(source, label, target):
                    graph.add_edge(source, label, target)
                report.mutations.append(
                    Mutation("add_edge", (source, target))
                )

    return report


@dataclass
class ChurnRunResult:
    """What one churn campaign did and answered.

    ``probe_results`` is the deterministic query trace — one
    ``(batch, term, sorted generalizations)`` row per probe — that the
    retraction-vs-rebuild regression test compares across drivers.
    ``phase_ms`` splits the campaign's wall time by phase (``churn`` /
    ``maintenance`` / ``refresh`` / ``probes``) and ``batch_work``
    holds one row per engine refresh (``round``, ``mode``, the
    ``added``/``retracted`` diff, and the saturation's ``derived`` /
    ``overdeleted`` / ``rederived`` / ``candidates`` counters), so a
    batched-vs-incremental comparison can attribute where the time and
    the inference work actually went; ``work`` keeps the campaign
    totals of the same counters.
    """

    batches: int = 0
    repairs: int = 0
    refresh_modes: dict[str, int] = field(default_factory=dict)
    probe_results: list[tuple[int, str, tuple[str, ...]]] = field(
        default_factory=list
    )
    work: dict[str, int] = field(default_factory=dict)
    phase_ms: dict[str, float] = field(
        default_factory=lambda: {
            "churn": 0.0,
            "maintenance": 0.0,
            "refresh": 0.0,
            "probes": 0.0,
        }
    )
    batch_work: list[dict[str, object]] = field(default_factory=list)

    def record_refresh(self, mode: str) -> None:
        self.refresh_modes[mode] = self.refresh_modes.get(mode, 0) + 1


def run_churn_workload(
    articulation,
    *,
    batches: int = 6,
    mutations_per_batch: int = 6,
    seed: int = 0,
    incremental: bool = True,
    probes_per_batch: int = 8,
    batch_size: int = 1,
) -> ChurnRunResult:
    """Drive ``batches`` rounds of source churn through maintenance
    and inference; answer deterministic probe queries after each
    refresh.

    ``incremental=True`` keeps one :class:`OntologyInferenceEngine`
    alive across the whole campaign: growth refreshes ride delta
    propagation, shrink refreshes ride the DRed retraction pass
    (``refresh_modes`` records which path each refresh took).
    ``incremental=False`` is the baseline the regression test compares
    against: a from-scratch engine build per refresh.  Given equal
    inputs and ``seed``, both drivers must produce identical
    ``probe_results``.

    ``batch_size`` coalesces engine refreshes: churn and maintenance
    still run every round (the articulation trajectory is identical
    for every ``batch_size``), but the engine is refreshed — and the
    probes answered — only every ``batch_size``-th round (plus once at
    the end), so the whole accumulated shrink+grow diff rides one
    :meth:`~repro.inference.horn.HornEngine.apply_batch`.  Probe rows
    stay tagged with the round they observed, so drivers with
    different batch sizes agree wherever their refresh rounds line up;
    ``batch_size=1`` reproduces the per-round campaign exactly.
    """
    from repro.core.maintenance import ArticulationMaintainer
    from repro.inference.engine import OntologyInferenceEngine

    if batch_size < 1:
        raise OnionError(f"batch_size must be >= 1, got {batch_size!r}")
    maintainer = ArticulationMaintainer(articulation)
    result = ChurnRunResult(batches=batches)
    phase = result.phase_ms
    engine = (
        OntologyInferenceEngine.from_articulation(articulation)
        if incremental
        else None
    )
    seen_stats: object = None
    if engine is not None:
        result.record_refresh(str(engine.last_refresh["mode"]))
        engine.fact_count()  # reach the first fixpoint: repairs from
        # here on are served by delta propagation / the DRed pass.
        # The initial build's counters are not campaign work.
        seen_stats = engine.engine.last_stats
    source_names = sorted(articulation.sources)
    for batch in range(batches):
        source_name = source_names[batch % len(source_names)]
        started = perf_counter()
        report = apply_churn(
            articulation.sources[source_name],
            n_mutations=mutations_per_batch,
            seed=seed * 1009 + batch,
        )
        phase["churn"] += (perf_counter() - started) * 1000.0
        started = perf_counter()
        maintenance = maintainer.apply_source_changes(
            source_name, report.touched_terms()
        )
        phase["maintenance"] += (perf_counter() - started) * 1000.0
        if maintenance.required_work:
            result.repairs += 1
        if (batch + 1) % batch_size and batch != batches - 1:
            continue  # edits accumulate into the next coalesced refresh
        started = perf_counter()
        if incremental:
            refresh = engine.refresh_from_articulation(articulation)
        else:
            engine = OntologyInferenceEngine.from_articulation(articulation)
            refresh = engine.last_refresh
        engine.fact_count()  # saturate here so refresh timing is honest
        phase["refresh"] += (perf_counter() - started) * 1000.0
        mode = str(refresh["mode"])
        result.record_refresh(mode)
        row: dict[str, object] = {
            "round": batch,
            "mode": mode,
            "added": int(refresh.get("added", 0)),
            "retracted": int(refresh.get("removed", 0)),
        }
        # Deterministic probes: the first covered source terms plus the
        # articulation's own classes, in sorted order.
        started = perf_counter()
        probes = sorted(articulation.covered_source_terms())[
            :probes_per_batch
        ]
        probes += [
            f"{articulation.name}:{term}"
            for term in sorted(articulation.ontology.terms())[
                :probes_per_batch
            ]
        ]
        for term in probes:
            answers = tuple(sorted(engine.generalizations(term)))
            result.probe_results.append((batch, term, answers))
        phase["probes"] += (perf_counter() - started) * 1000.0
        # last_stats is replaced per saturation; a batch whose refresh
        # queued no engine work keeps the previous dict and must not
        # re-count it.
        stats = engine.engine.last_stats
        if stats is not seen_stats:
            seen_stats = stats
            for key in ("candidates", "derived", "overdeleted", "rederived"):
                value = int(stats[key])
                result.work[key] = result.work.get(key, 0) + value
                row[key] = value
        result.batch_work.append(row)
    return result
