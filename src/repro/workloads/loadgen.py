"""A concurrent load generator for the serving subsystem.

Drives an :class:`~repro.serving.server.ArticulationServer` the way a
mediator fleet would: ``clients`` threads each issue a fixed number of
requests drawn from a **Zipfian** mix over a pool of cross-source
queries and inference operations (weight ``1/rank^s`` — a few hot
requests, a long cold tail, the distribution that makes a result
cache earn its keep), while a background thread applies source churn
batches through ``/churn`` and an **isolation auditor** holds one
snapshot session open across the whole run, asserting after every
probe that its pinned closure never moves under concurrent churn.

Everything is seeded and counted (per-client RNGs, fixed request
counts, a fixed churn schedule), so two runs against the same server
build issue the same multiset of requests — latency numbers move,
hit-rate and isolation numbers do not drift.

The module speaks plain :mod:`http.client` — the load generator is
also the reference client for the wire protocol.
"""

from __future__ import annotations

import http.client
import json
import statistics
import threading
from dataclasses import dataclass, field
from random import Random
from time import perf_counter, sleep

from repro.errors import ServingError

__all__ = [
    "LoadClient",
    "LoadReport",
    "default_request_pool",
    "run_load",
    "zipf_weights",
]


def zipf_weights(n: int, s: float = 1.1) -> list[float]:
    """Zipfian popularity weights for ranks ``1..n`` (``1/rank^s``)."""
    if n < 1:
        raise ServingError(f"need at least one request kind, got {n}")
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def default_request_pool() -> list[dict]:
    """The request mix for the paper's transport workload.

    Ordered hottest-first (rank 1 gets the largest Zipf weight): the
    classic cross-source price queries lead, subsumption ops follow,
    and a ground pattern probe brings up the tail.
    """
    return [
        {"path": "/query", "body": {"query": "SELECT price FROM transport:Vehicle"}},
        {"path": "/infer", "body": {"op": "generalizations", "term": "carrier:Car"}},
        {"path": "/query", "body": {"query": "SELECT price FROM transport:CarsTrucks"}},
        {"path": "/infer", "body": {"op": "specializations", "term": "transport:Vehicle"}},
        {"path": "/query", "body": {"query": "SELECT price, owner FROM carrier:Car"}},
        {"path": "/infer", "body": {"op": "implies", "term": "carrier:Car", "general": "transport:Vehicle"}},
        {"path": "/query", "body": {"query": "SELECT weight FROM factory:Truck"}},
        {"path": "/infer", "body": {"op": "generalizations", "term": "factory:Truck"}},
        {"path": "/query", "body": {"query": "SELECT price FROM transport:PassengerCar"}},
        {"path": "/infer", "body": {"op": "pattern", "atom": ["implies", "?x", "transport:Vehicle"]}},
        {"path": "/query", "body": {"query": "SELECT model FROM carrier:Trucks"}},
        {"path": "/infer", "body": {"op": "specializations", "term": "transport:CarsTrucks"}},
    ]


class LoadClient:
    """One HTTP client: a persistent connection plus JSON helpers."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One JSON round trip; JSON-lines responses fold into a dict.

        Streamed ``/query`` responses return the ``done`` trailer with
        the row objects under ``"row_data"`` — enough for the load
        generator to count rows and read cache provenance.
        """
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        self.conn.request(method, path, payload, headers)
        response = self.conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if "ndjson" in content_type:
            rows = [json.loads(line) for line in raw.splitlines() if line]
            trailer = rows.pop() if rows and rows[-1].get("done") else {}
            result = {"ok": response.status == 200, "row_data": rows}
            result.update(trailer)
            return result
        decoded = json.loads(raw) if raw else {}
        decoded.setdefault("ok", response.status == 200)
        decoded["status"] = response.status
        return decoded

    def post(self, path: str, body: dict | None = None) -> dict:
        return self.request("POST", path, body or {})

    def get(self, path: str) -> dict:
        return self.request("GET", path)

    def close(self) -> None:
        self.conn.close()


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    clients: int = 0
    requests: int = 0
    errors: int = 0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    churn_batches: int = 0
    isolation_probes: int = 0
    isolation_violations: int = 0
    cache: dict = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "churn_batches": self.churn_batches,
            "isolation_probes": self.isolation_probes,
            "isolation_violations": self.isolation_violations,
            "cache": self.cache,
        }


def _percentiles(latencies_ms: list[float]) -> tuple[float, float]:
    if not latencies_ms:
        return 0.0, 0.0
    if len(latencies_ms) == 1:
        return latencies_ms[0], latencies_ms[0]
    cuts = statistics.quantiles(latencies_ms, n=100, method="inclusive")
    return cuts[49], cuts[98]


def run_load(
    host: str,
    port: int,
    *,
    clients: int = 8,
    requests_per_client: int = 40,
    seed: int = 0,
    zipf_s: float = 1.1,
    churn_batches: int = 5,
    churn_mutations: int = 3,
    churn_pause_s: float = 0.01,
    churn_sources: tuple[str, ...] = ("carrier", "factory"),
    pool: list[dict] | None = None,
    audit_term: str = "carrier:Car",
) -> LoadReport:
    """Run the full workload against a live server; see module docs.

    The run finishes when every client has issued its quota (fixed
    request counts, not wall-clock — determinism over duration).  The
    churn thread stops with the clients, whichever comes first; the
    auditor's session is refreshed and re-probed at the very end, so a
    run also covers the explicit re-pin path.
    """
    if clients < 1 or requests_per_client < 1:
        raise ServingError("clients and requests_per_client must be >= 1")
    pool = pool if pool is not None else default_request_pool()
    weights = zipf_weights(len(pool), zipf_s)
    report = LoadReport(clients=clients)
    latencies_ms: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    clients_done = threading.Event()

    def client_loop(index: int) -> None:
        rng = Random(seed * 7919 + index)
        client = LoadClient(host, port)
        try:
            for _ in range(requests_per_client):
                choice = rng.choices(pool, weights)[0]
                started = perf_counter()
                try:
                    result = client.post(choice["path"], choice["body"])
                    if not result.get("ok", False):
                        errors[index] += 1
                except (OSError, http.client.HTTPException, ValueError):
                    errors[index] += 1
                    client.close()
                    client = LoadClient(host, port)
                    continue
                latencies_ms[index].append(
                    (perf_counter() - started) * 1000.0
                )
        finally:
            client.close()

    # -- the isolation auditor: one session, one invariant -------------
    audit = LoadClient(host, port)
    session_id = audit.post("/sessions", {})["session"]
    probe = {
        "op": "generalizations",
        "term": audit_term,
        "session": session_id,
    }
    baseline = audit.post("/infer", probe)["terms"]

    audit_stop = threading.Event()

    def audit_loop() -> None:
        while not audit_stop.is_set():
            answer = audit.post("/infer", probe)["terms"]
            report.isolation_probes += 1
            if answer != baseline:
                report.isolation_violations += 1
            sleep(0.002)

    # -- background churn: a fixed, seeded schedule ---------------------
    def churn_loop() -> None:
        churner = LoadClient(host, port)
        sources = list(churn_sources)
        try:
            for batch in range(churn_batches):
                if clients_done.is_set():
                    break
                result = churner.post(
                    "/churn",
                    {
                        "source": sources[batch % len(sources)],
                        "mutations": churn_mutations,
                        "seed": seed * 104729 + batch,
                        # never delete classes the query pool targets;
                        # edge deletions keep the retraction path hot
                        "delete_weight": 0.0,
                    },
                )
                if result.get("ok", False):
                    report.churn_batches += 1
                sleep(churn_pause_s)
        finally:
            churner.close()

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    auditor = threading.Thread(target=audit_loop, daemon=True)
    churner = threading.Thread(target=churn_loop, daemon=True)

    started = perf_counter()
    for thread in threads:
        thread.start()
    auditor.start()
    churner.start()
    for thread in threads:
        thread.join()
    clients_done.set()
    churner.join()
    audit_stop.set()
    auditor.join()
    report.duration_s = perf_counter() - started

    # the frozen snapshot must have survived every churn batch; after
    # an explicit refresh the session re-pins the *live* fixpoint
    final_frozen = audit.post("/infer", probe)["terms"]
    report.isolation_probes += 1
    if final_frozen != baseline:
        report.isolation_violations += 1
    audit.post(f"/sessions/{session_id}/refresh", {})
    audit.post("/infer", probe)  # answered from the re-pinned store
    audit.post(f"/sessions/{session_id}/close", {})

    stats = audit.get("/stats")
    audit.close()

    flat = [ms for per_client in latencies_ms for ms in per_client]
    report.requests = clients * requests_per_client
    report.errors = sum(errors)
    report.throughput_rps = (
        report.requests / report.duration_s if report.duration_s else 0.0
    )
    report.p50_ms, report.p99_ms = _percentiles(flat)
    report.cache = dict(stats.get("cache", {}))
    report.server_stats = {
        k: v for k, v in stats.items() if k not in ("ok", "status")
    }
    return report
