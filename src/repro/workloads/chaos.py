"""Chaos campaigns: churn under seeded fault injection, oracle-checked.

The maintenance experiments (paper §5.3, §6) assume the inference
runtime survives its environment: worker processes die, tasks hang,
the persistence layer throws transient lock errors, and the process
itself can crash between journaling a churn batch and reaching its
fixpoint.  :func:`run_chaos_campaign` drives a deterministic batched
churn workload through an engine configured with a
:class:`~repro.reliability.faults.FaultPlan` and proves the robustness
contract end to end: after every injected crash, hang, retry, and
journal recovery, the final fact set is **bit-for-bit equal** to a
fault-free from-scratch oracle over the same surviving base facts.

Everything is seeded — the batches, the fault plan's per-site RNG
streams — so a failing campaign replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.core.rules import HornClause
from repro.inference.horn import Atom, HornEngine
from repro.reliability import (
    ChurnJournal,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
)

__all__ = [
    "CHAOS_CLAUSES",
    "ChaosResult",
    "chaos_batches",
    "run_chaos_campaign",
]

# A recursive program small enough to saturate per batch but deep
# enough that stratified parallel scheduling has real strata to ship:
# subclass transitivity, the lift into implication, implication
# transitivity, and instance inheritance.
CHAOS_CLAUSES: tuple[HornClause, ...] = (
    HornClause(("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))),
    HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),)),
    HornClause(
        ("implies", "?x", "?z"),
        (("implies", "?x", "?y"), ("implies", "?y", "?z")),
    ),
    HornClause(
        ("instance_of", "?o", "?c2"),
        (("instance_of", "?o", "?c1"), ("implies", "?c1", "?c2")),
    ),
)


def chaos_batches(
    *,
    batches: int = 8,
    ops_per_batch: int = 10,
    seed: int = 0,
    n_nodes: int = 8,
) -> list[tuple[list[Atom], list[Atom]]]:
    """Deterministic ``(adds, retracts)`` diffs for a churn campaign.

    Retracts are drawn from the same atom distribution as adds, so
    batches naturally mix genuine deletions with no-op retractions —
    the oracle's plain-set semantics define what each one means.
    """
    rng = random.Random(seed)

    def atom() -> Atom:
        if rng.random() < 0.25:
            return (
                "instance_of",
                f"o{rng.randrange(3)}",
                f"v{rng.randrange(n_nodes)}",
            )
        return (
            "S",
            f"v{rng.randrange(n_nodes)}",
            f"v{rng.randrange(n_nodes)}",
        )

    out: list[tuple[list[Atom], list[Atom]]] = []
    for _ in range(batches):
        n_adds = rng.randint(1, ops_per_batch)
        n_retracts = rng.randint(0, max(1, ops_per_batch // 2))
        out.append(
            ([atom() for _ in range(n_adds)], [atom() for _ in range(n_retracts)])
        )
    return out


@dataclass
class ChaosResult:
    """What one chaos campaign survived — and whether parity held."""

    parity: bool
    batches: int
    recoveries: int
    facts: int
    oracle_facts: int
    elapsed_ms: float
    scheduler_stats: dict[str, int] = field(default_factory=dict)
    fault_summary: dict[str, dict[str, int]] = field(default_factory=dict)


_SCHED_KEYS = ("retries", "timeouts", "pool_respawns", "degraded_strata")


def _oracle_facts(
    batch_list: list[tuple[list[Atom], list[Atom]]],
    clauses: tuple[HornClause, ...],
) -> set[Atom]:
    """Fault-free ground truth: fold the diffs with plain set
    semantics (retract-then-add, matching ``apply_batch``) and
    saturate a fresh serial engine from scratch."""
    base: set[Atom] = set()
    for adds, retracts in batch_list:
        for fact in retracts:
            base.discard(fact)
        for fact in adds:
            base.add(fact)
    engine = HornEngine()
    engine.add_clauses(clauses)
    engine.add_facts(sorted(base))
    engine.saturate()
    return engine.facts()


def run_chaos_campaign(
    journal_path: str | Path,
    *,
    batches: int = 8,
    ops_per_batch: int = 10,
    seed: int = 0,
    workers: int = 2,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    clauses: tuple[HornClause, ...] = CHAOS_CLAUSES,
    snapshot_every: int = 4,
) -> ChaosResult:
    """Run a batched churn campaign under injected faults; verify the
    final state against the fault-free oracle.

    Each batch rides crash-safe :meth:`HornEngine.apply_batch`.  An
    injected ``batch_crash`` surfaces as
    :class:`~repro.reliability.faults.FaultInjected` after the diff is
    journaled but before the engine mutates — the campaign then does
    what a restarted process would: discards the engine and calls
    :meth:`ChurnJournal.recover`, which replays the crashed batch as
    durable history.  Scheduler-level faults (worker crashes, hangs,
    slow tasks) never surface at all; the hardened
    :class:`~repro.inference.horn.ParallelScheduler` absorbs them.
    """
    batch_list = chaos_batches(
        batches=batches, ops_per_batch=ops_per_batch, seed=seed
    )
    oracle = _oracle_facts(batch_list, clauses)

    started = perf_counter()
    journal = ChurnJournal(journal_path)
    engine = HornEngine(
        workers=workers,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
        journal=journal,
    )
    engine.add_clauses(clauses)
    engine.saturate()
    # the snapshot carries the program: recovery needs the clauses
    journal.snapshot(engine)

    result = ChaosResult(
        parity=False,
        batches=len(batch_list),
        recoveries=0,
        facts=0,
        oracle_facts=len(oracle),
        elapsed_ms=0.0,
    )
    sched = dict.fromkeys(_SCHED_KEYS, 0)
    seen_stats: object = engine.last_stats

    def harvest() -> None:
        nonlocal seen_stats
        stats = engine.last_stats
        if stats is not seen_stats:
            seen_stats = stats
            for key in _SCHED_KEYS:
                sched[key] += int(stats.get(key, 0))

    for index, (adds, retracts) in enumerate(batch_list):
        try:
            engine.apply_batch(adds, retracts)
        except FaultInjected:
            # the diff is durable, the engine state is not: recover
            # exactly as a restarted process would.  The crashed batch
            # is replayed by recovery — do not re-apply it.
            result.recoveries += 1
            engine, _report = journal.recover(
                workers=workers,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
            )
            seen_stats = None  # fresh engine, fresh stats dict
        harvest()
        if snapshot_every and (index + 1) % snapshot_every == 0:
            journal.snapshot(engine)

    final = engine.facts()
    result.elapsed_ms = (perf_counter() - started) * 1000.0
    result.facts = len(final)
    result.parity = final == oracle
    result.scheduler_stats = sched
    if fault_plan is not None:
        result.fault_summary = fault_plan.summary()
    return result
