"""The paper's running example (Fig. 2): carrier, factory, transport.

Fig. 2 shows two simplified source ontologies from a transportation
application — a *carrier* (transport company) and a *factory*
(manufacturer) — articulated through a *transport* ontology.  The
figure is partially reconstructed here (the published rendering omits
"a few of the most obvious edges" and the bitmap is low-resolution);
every relationship used in the paper's prose examples is present:

* ``carrier:Car => factory:Vehicle`` (§4.1, first worked example);
* the cascade through ``transport:PassengerCar``;
* ``transport:Owner => transport:Person`` (internal rule);
* ``(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks`` with
  the synthesized ``CargoCarrierVehicle`` and common subclass ``Truck``;
* ``factory:Vehicle => (carrier:Cars | carrier:Trucks)`` with the
  synthesized ``CarsTrucks``;
* the ``PSToEuroFn``/``EuroToPSFn`` currency conversion pair of Fig. 2
  plus the ``DGToEuroFn`` Dutch-guilder example of §4.1.

The module also ships small instance populations for both sources so
the query examples and benchmarks can run end to end.
"""

from __future__ import annotations

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import (
    ArticulationRuleSet,
    FunctionalRule,
    TermRef,
    parse_rule,
)

__all__ = [
    "ARTICULATION_NAME",
    "carrier_ontology",
    "factory_ontology",
    "carrier_store",
    "factory_store",
    "paper_rules",
    "generate_transport_articulation",
    "EXPECTED_ARTICULATION_TERMS",
    "EXPECTED_INTERNAL_EDGES",
    "EXPECTED_BRIDGES",
    "PS_PER_EURO",
    "DG_PER_EURO",
]

ARTICULATION_NAME = "transport"

# Fixed historical conversion rates (the Euro launch rates the paper's
# era would have used): 1 EUR = 2.20371 NLG; GBP floated, we pin the
# 1999-01-01 reference rate 1 EUR = 0.7111 GBP.
DG_PER_EURO = 2.20371
PS_PER_EURO = 0.7111


def carrier_ontology() -> Ontology:
    """The carrier (transport company) source ontology of Fig. 2."""
    onto = Ontology("carrier")
    for term in (
        "Transportation",
        "Carrier",
        "Cars",
        "Trucks",
        "Car",
        "SUV",
        "MyCar",
        "Person",
        "Driver",
        "Owner",
        "Price",
        "Model",
        "PoundSterling",
    ):
        onto.add_term(term)
    onto.add_subclass("Carrier", "Transportation")
    onto.add_subclass("Cars", "Carrier")
    onto.add_subclass("Trucks", "Carrier")
    onto.add_subclass("Car", "Cars")
    onto.add_subclass("SUV", "Cars")
    onto.add_instance("MyCar", "Cars")
    onto.add_subclass("Driver", "Person")
    onto.add_subclass("Owner", "Person")
    onto.add_attribute("Price", "Cars")
    onto.add_attribute("Price", "Trucks")
    onto.add_attribute("Owner", "Trucks")
    onto.add_attribute("Model", "Trucks")
    # carrier:car:driver — "a node car which has an outgoing edge to
    # the node driver" (§3).
    onto.relate("Car", "drivenBy", "Driver")
    # Prices at the carrier are quoted in Pound Sterling.
    onto.add_attribute("PoundSterling", "Price")
    return onto


def factory_ontology() -> Ontology:
    """The factory (manufacturer) source ontology of Fig. 2."""
    onto = Ontology("factory")
    for term in (
        "Transportation",
        "Vehicle",
        "CargoCarrier",
        "GoodsVehicle",
        "Truck",
        "Price",
        "Weight",
        "Buyer",
        "Factory",
        "DutchGuilders",
    ):
        onto.add_term(term)
    onto.add_subclass("Vehicle", "Transportation")
    onto.add_subclass("CargoCarrier", "Transportation")
    # GoodsVehicle is the explicit intersection in the factory's own
    # hierarchy; Truck specializes it, making Truck a *transitive*
    # common subclass of Vehicle and CargoCarrier (§4.1 conjunction
    # example: "e.g., Truck").
    onto.add_subclass("GoodsVehicle", "Vehicle")
    onto.add_subclass("GoodsVehicle", "CargoCarrier")
    onto.add_subclass("Truck", "GoodsVehicle")
    onto.add_attribute("Price", "Vehicle")
    onto.add_attribute("Weight", "GoodsVehicle")
    onto.relate("Buyer", "buys", "Vehicle")
    onto.relate("Factory", "produces", "Vehicle")
    # Prices at the factory are quoted in Dutch Guilders.
    onto.add_attribute("DutchGuilders", "Price")
    return onto


def _currency_rules() -> list[FunctionalRule]:
    ps_to_euro = FunctionalRule(
        "PSToEuroFn",
        TermRef("carrier", "PoundSterling"),
        TermRef(ARTICULATION_NAME, "Euro"),
        fn=lambda pounds: pounds / PS_PER_EURO,
        inverse=lambda euros: euros * PS_PER_EURO,
        inverse_name="EuroToPSFn",
    )
    dg_to_euro = FunctionalRule(
        "DGToEuroFn",
        TermRef("factory", "DutchGuilders"),
        TermRef(ARTICULATION_NAME, "Euro"),
        fn=lambda guilders: guilders / DG_PER_EURO,
        inverse=lambda euros: euros * DG_PER_EURO,
        inverse_name="EuroToDGFn",
    )
    return [ps_to_euro, dg_to_euro]


def paper_rules() -> ArticulationRuleSet:
    """Every articulation rule worked through in §4.1, as one rule set."""
    rules = ArticulationRuleSet()
    rules.add(parse_rule("carrier:Car => factory:Vehicle"))
    rules.add(
        parse_rule(
            "carrier:Car => transport:PassengerCar => factory:Vehicle"
        )
    )
    rules.add(parse_rule("transport:Owner => transport:Person"))
    rules.add(
        parse_rule(
            "(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks "
            "AS CargoCarrierVehicle"
        )
    )
    rules.add(parse_rule("factory:Vehicle => (carrier:Cars | carrier:Trucks)"))
    for functional in _currency_rules():
        rules.add(functional)
    return rules


def generate_transport_articulation() -> Articulation:
    """Run the articulation generator on the Fig. 2 inputs."""
    generator = ArticulationGenerator(
        [carrier_ontology(), factory_ontology()], name=ARTICULATION_NAME
    )
    return generator.generate(paper_rules())


def carrier_store() -> "InstanceStore":
    """Instances at the carrier; prices quoted in Pound Sterling.

    Includes the paper's ``MyCar`` with ``Price 2000`` (Fig. 2 shows
    the instance and its price literal).
    """
    from repro.kb.instances import InstanceStore

    store = InstanceStore(carrier_ontology())
    store.add("MyCar", "Cars", price=2000, owner="Gio", model="Classic")
    store.add("FleetCar1", "Car", price=7200, owner="Carrier Co",
              model="Estate")
    store.add("FleetSUV1", "SUV", price=11500, owner="Carrier Co",
              model="Offroad")
    store.add("HaulTruck1", "Trucks", price=21500, owner="Carrier Co",
              model="T800")
    store.add("HaulTruck2", "Trucks", price=5400, owner="Prasenjit",
              model="T400")
    return store


def factory_store() -> "InstanceStore":
    """Instances at the factory; prices quoted in Dutch Guilders."""
    from repro.kb.instances import InstanceStore

    store = InstanceStore(factory_ontology())
    store.add("ProtoVehicle1", "Vehicle", price=19500, weight=950)
    store.add("GoodsVan1", "GoodsVehicle", price=30500, weight=1800)
    store.add("LineTruck1", "Truck", price=61000, weight=3500)
    store.add("LineTruck2", "Truck", price=9800, weight=2900)
    return store


# ----------------------------------------------------------------------
# ground truth for tests and the FIG2 benchmark
# ----------------------------------------------------------------------
EXPECTED_ARTICULATION_TERMS = frozenset(
    {
        "Vehicle",
        "PassengerCar",
        "Owner",
        "Person",
        "CargoCarrierVehicle",
        "CarsTrucks",
        "Euro",
    }
)

# (source, label, target) inside the transport ontology.
EXPECTED_INTERNAL_EDGES = frozenset(
    {
        ("Owner", "S", "Person"),
    }
)

# Qualified (source, label, target) bridge edges.
EXPECTED_BRIDGES = frozenset(
    {
        # carrier:Car => factory:Vehicle
        ("carrier:Car", "SIBridge", "transport:Vehicle"),
        ("factory:Vehicle", "SIBridge", "transport:Vehicle"),
        ("transport:Vehicle", "SIBridge", "factory:Vehicle"),
        # the PassengerCar cascade
        ("carrier:Car", "SIBridge", "transport:PassengerCar"),
        ("transport:PassengerCar", "SIBridge", "factory:Vehicle"),
        # the conjunction: CargoCarrierVehicle
        ("transport:CargoCarrierVehicle", "SIBridge", "factory:CargoCarrier"),
        ("transport:CargoCarrierVehicle", "SIBridge", "factory:Vehicle"),
        ("transport:CargoCarrierVehicle", "SIBridge", "carrier:Trucks"),
        ("factory:GoodsVehicle", "SIBridge", "transport:CargoCarrierVehicle"),
        ("factory:Truck", "SIBridge", "transport:CargoCarrierVehicle"),
        # the disjunction: CarsTrucks
        ("carrier:Cars", "SIBridge", "transport:CarsTrucks"),
        ("carrier:Trucks", "SIBridge", "transport:CarsTrucks"),
        ("factory:Vehicle", "SIBridge", "transport:CarsTrucks"),
        # currency conversions
        ("carrier:PoundSterling", "PSToEuroFn()", "transport:Euro"),
        ("transport:Euro", "EuroToPSFn()", "carrier:PoundSterling"),
        ("factory:DutchGuilders", "DGToEuroFn()", "transport:Euro"),
        ("transport:Euro", "EuroToDGFn()", "factory:DutchGuilders"),
    }
)
