"""Client sessions: copy-free snapshot isolation over the closure.

A session pins the saturated :class:`~repro.inference.horn.FactStore`
the engine had published when the session was created (or last
refreshed) and answers every read from a **copy-free overlay** on top
of it — the PR 2 overlay machinery.  The pinned base is *frozen*: the
service's write path detaches the live engine onto a private copy
(:meth:`~repro.inference.horn.HornEngine.detach_store`) before any
churn mutates the closure, so a session keeps answering the old
fixpoint no matter how much the base engine moves, and observes new
state only on an explicit :meth:`SessionManager.refresh`.

The cost model is deliberately asymmetric: sessions (many, per
client) never copy anything; the writer (one, serialized) pays one
O(closure) copy per churn boundary that actually has live readers.

Snapshot reads never touch a :class:`HornEngine` — they probe the
frozen store's argument-position indexes directly
(:func:`snapshot_query`), which is what makes them safe under full
request concurrency: a frozen store is never mutated, so reads need
no lock at all.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.inference.horn import Atom, FactStore, is_variable, unify_atom

__all__ = ["Session", "SessionManager", "snapshot_query", "snapshot_holds"]


def snapshot_query(store: FactStore, pattern: Atom) -> list[dict[str, str]]:
    """All bindings of a pattern against a frozen store.

    Mirrors :meth:`HornEngine.query`'s index discipline — the most
    selective bound position picks the probe bucket — without needing
    an engine (the snapshot is already a fixpoint).
    """
    predicate = pattern[0]
    bound = [
        (position, arg)
        for position, arg in enumerate(pattern)
        if position and not is_variable(arg)
    ]
    if bound:
        position, value = min(
            bound,
            key=lambda pv: store.probe_size(predicate, pv[0], pv[1]),
        )
        pool = store.probe(predicate, position, value)
    else:
        pool = store.pool(predicate)
    results: list[dict[str, str]] = []
    for fact in pool:
        binding = unify_atom(pattern, fact)
        if binding is not None:
            results.append(binding)
    return results


def snapshot_holds(store: FactStore, atom: Atom) -> bool:
    """Is a ground atom in the frozen closure?"""
    return atom in store


@dataclass
class Session:
    """One client's pinned view of the closure."""

    session_id: str
    store: FactStore  # overlay; its base is the frozen snapshot
    engine_version: int
    queries: int = 0

    def query(self, pattern: Atom) -> list[dict[str, str]]:
        self.queries += 1
        return snapshot_query(self.store, pattern)

    def holds(self, atom: Atom) -> bool:
        self.queries += 1
        return snapshot_holds(self.store, atom)


class SessionManager:
    """Creates, resolves, refreshes and retires sessions.

    ``limit`` bounds live sessions: at the cap, the least recently
    *created or refreshed* session is evicted (clients see a clean
    "unknown session" error and re-create).  The manager also answers
    the writer's one question — :meth:`pins` — does any live session
    pin this store object, i.e. must the writer detach before
    mutating?
    """

    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ServingError(f"session limit must be >= 1, got {limit!r}")
        self.limit = limit
        self._lock = threading.Lock()
        # insertion-ordered: oldest created/refreshed first
        self._sessions: dict[str, Session] = {}
        self.created = 0
        self.evicted = 0

    def create(self, snapshot: FactStore, engine_version: int) -> Session:
        """A new session whose overlay pins ``snapshot``."""
        session = Session(
            session_id=secrets.token_hex(8),
            store=FactStore(base=snapshot),
            engine_version=engine_version,
        )
        with self._lock:
            self._sessions[session.session_id] = session
            self.created += 1
            while len(self._sessions) > self.limit:
                victim = next(iter(self._sessions))
                del self._sessions[victim]
                self.evicted += 1
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServingError(f"unknown session {session_id!r}")
        return session

    def refresh(
        self, session_id: str, snapshot: FactStore, engine_version: int
    ) -> Session:
        """Re-pin a session onto the current published snapshot."""
        with self._lock:
            if session_id not in self._sessions:
                raise ServingError(f"unknown session {session_id!r}")
            session = self._sessions.pop(session_id)
            session.store = FactStore(base=snapshot)
            session.engine_version = engine_version
            self._sessions[session_id] = session  # back of the LRU order
        return session

    def close(self, session_id: str) -> bool:
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def pins(self, store: FactStore) -> bool:
        """Does any live session overlay exactly this store object?"""
        with self._lock:
            return any(
                session.store._base is store
                for session in self._sessions.values()
            )

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "active": len(self._sessions),
                "created": self.created,
                "evicted": self.evicted,
                "limit": self.limit,
            }
