"""Articulation-as-a-service (ROADMAP item 1).

The serving subsystem turns the in-process ONION stack into a small
concurrent network service:

* :mod:`repro.serving.service` — the shared-state core: one
  readers-writer-locked :class:`ArticulationService` owning the
  articulation, engines, result cache and session table;
* :mod:`repro.serving.session` — copy-free snapshot sessions over the
  PR 2 overlay stores;
* :mod:`repro.serving.cache` — the server-wide query-result LRU keyed
  on articulation fingerprint + publication counter;
* :mod:`repro.serving.protocol` — the JSON / JSON-lines wire codec;
* :mod:`repro.serving.server` — the stdlib threaded HTTP front.
"""

from repro.serving.cache import QueryResultCache
from repro.serving.server import ArticulationServer
from repro.serving.service import ArticulationService, load_paper_workload
from repro.serving.session import Session, SessionManager, snapshot_query

__all__ = [
    "ArticulationServer",
    "ArticulationService",
    "QueryResultCache",
    "Session",
    "SessionManager",
    "load_paper_workload",
    "snapshot_query",
]
