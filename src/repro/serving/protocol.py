"""The serving tier's JSON protocol.

Every request and response body is one JSON object; query results
stream as JSON-lines (one row object per line, then a ``done`` trailer
carrying counts and cache provenance).  This module is the wire-format
layer shared by the HTTP server, its clients (the load generator, the
CLI) and the tests: envelope builders, field extractors that raise
:class:`~repro.errors.ProtocolError` on malformed input, and the
atom/row codecs.

Keeping the codec separate from both the transport
(:mod:`repro.serving.server`) and the engine state
(:mod:`repro.serving.service`) means the protocol can be exercised —
and evolved — without standing up a socket.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator

from repro.errors import ProtocolError

__all__ = [
    "ok",
    "error",
    "require",
    "optional",
    "parse_atom",
    "parse_atoms",
    "atom_to_wire",
    "row_to_wire",
    "jsonl_stream",
    "decode_body",
]

#: Inference operations the ``/infer`` endpoint accepts, mapped to the
#: (predicate, bound position) they expand to.  ``implies`` asks a
#: ground yes/no question; the rest enumerate one free position.
INFER_OPS = frozenset(
    {"generalizations", "specializations", "implies", "pattern"}
)


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def ok(payload: dict | None = None) -> dict:
    """A success envelope: ``{"ok": true, ...payload}``."""
    body = {"ok": True}
    if payload:
        body.update(payload)
    return body


def error(code: str, message: str) -> dict:
    """An error envelope: ``{"ok": false, "error": code, "message"}``."""
    return {"ok": False, "error": code, "message": message}


# ----------------------------------------------------------------------
# field extraction (validation at the protocol boundary)
# ----------------------------------------------------------------------
def decode_body(raw: bytes) -> dict:
    """Decode a request body into a JSON object (empty body = ``{}``)."""
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def require(payload: dict, field: str, kind: type = str):
    """The value of a mandatory field, type-checked."""
    if field not in payload:
        raise ProtocolError(f"missing required field {field!r}")
    value = payload[field]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or (
        kind in (int, float) and isinstance(value, bool)
    ):
        raise ProtocolError(
            f"field {field!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def optional(payload: dict, field: str, kind: type = str, default=None):
    """The value of an optional field, type-checked when present."""
    if field not in payload or payload[field] is None:
        return default
    return require(payload, field, kind)


# ----------------------------------------------------------------------
# atom / row codecs
# ----------------------------------------------------------------------
def parse_atom(value: object) -> tuple[str, ...]:
    """A wire atom (``["implies", "a", "b"]``) as the engine tuple."""
    if (
        not isinstance(value, list)
        or len(value) < 2
        or not all(isinstance(part, str) for part in value)
    ):
        raise ProtocolError(
            f"an atom is a list of 2+ strings, got {value!r}"
        )
    return tuple(value)


def parse_atoms(payload: dict, field: str) -> list[tuple[str, ...]]:
    """A list-of-atoms field (missing = empty)."""
    value = payload.get(field, [])
    if not isinstance(value, list):
        raise ProtocolError(f"field {field!r} must be a list of atoms")
    return [parse_atom(item) for item in value]


def atom_to_wire(atom: tuple[str, ...]) -> list[str]:
    return list(atom)


def row_to_wire(row) -> dict:
    """One :class:`~repro.query.executor.ResultRow` as a wire object."""
    return {
        "source": row.source,
        "instance_id": row.instance_id,
        "cls": row.cls,
        "values": dict(row.values),
    }


def jsonl_stream(
    rows: Iterable[dict], trailer: dict
) -> Iterator[bytes]:
    """Encode rows as JSON-lines, ending with a ``done`` trailer.

    The trailer is evaluated *after* the rows are exhausted, so
    callers may mutate it while the stream drains (row counts, cache
    flags resolved at end of iteration).
    """
    for row in rows:
        yield json.dumps(row, sort_keys=True).encode("utf-8") + b"\n"
    done = {"done": True}
    done.update(trailer)
    yield json.dumps(done, sort_keys=True).encode("utf-8") + b"\n"
