"""Articulation-as-a-service: the HTTP transport.

A thin stdlib tier (:class:`http.server.ThreadingHTTPServer`, one
thread per connection) that maps a small REST-ish surface onto one
shared :class:`~repro.serving.service.ArticulationService`:

====== ============================ =======================================
Method Path                         Meaning
====== ============================ =======================================
GET    ``/health``                  liveness, loaded articulation, facts
GET    ``/stats``                   counters, cache/session/journal stats
POST   ``/ontologies``              register an adjacency-format ontology
POST   ``/articulate``              generate+install over registered sources
POST   ``/refresh``                 re-extract the loaded articulation
POST   ``/sessions``                open a snapshot-isolated session
POST   ``/sessions/<id>/refresh``   re-pin a session to the live fixpoint
DELETE ``/sessions/<id>``           close a session
POST   ``/infer``                   subsumption ops / Horn patterns
POST   ``/query``                   cross-source query (JSON-lines stream)
POST   ``/churn``                   one background churn batch
POST   ``/facts``                   raw journaled fact diff
POST   ``/kb``                      load instance rows into one source
====== ============================ =======================================

Plain JSON bodies travel with ``Content-Length``; ``/query`` streams
rows as JSON-lines over ``Transfer-Encoding: chunked`` (HTTP/1.1), one
row object per line and a ``done`` trailer with counts and cache
provenance.  Engine errors map onto status codes at this layer only —
the service below speaks exceptions, the wire speaks envelopes.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.errors import OnionError, ProtocolError, ServingError
from repro.serving import protocol
from repro.serving.service import ArticulationService

__all__ = ["ArticulationServer"]

_MAX_BODY = 16 * 1024 * 1024  # one registered ontology, comfortably


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "onion-serving/1"
    service: ArticulationService  # injected by ArticulationServer

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the load generator's job, not stderr's

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ProtocolError(f"request body too large ({length} bytes)")
        return protocol.decode_body(self.rfile.read(length) if length else b"")

    def _send_json(self, status: int, body: dict) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_chunked(self, chunks) -> None:
        """Stream an iterable of byte chunks as one chunked response."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for chunk in chunks:
            if not chunk:
                continue
            self.wfile.write(b"%x\r\n" % len(chunk))
            self.wfile.write(chunk)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _fail(self, exc: Exception) -> None:
        if isinstance(exc, ProtocolError):
            status, code = 400, "protocol"
        elif isinstance(exc, ServingError):
            status = 404 if "unknown" in str(exc) else 409
            code = "serving"
        elif isinstance(exc, OnionError):
            status, code = 422, "engine"
        else:
            status, code = 500, "internal"
        self._send_json(status, protocol.error(code, str(exc)))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        try:
            path = urlparse(self.path).path.rstrip("/")
            if path == "/health":
                self._send_json(200, protocol.ok(self.service.health()))
            elif path == "/stats":
                self._send_json(200, protocol.ok(self.service.stats()))
            else:
                self._send_json(
                    404, protocol.error("route", f"no route GET {path!r}")
                )
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self._fail(exc)

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            parts = urlparse(self.path).path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "sessions":
                self._send_json(
                    200,
                    protocol.ok(self.service.close_session(parts[1])),
                )
            else:
                self._send_json(
                    404,
                    protocol.error("route", f"no route DELETE {self.path!r}"),
                )
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self._fail(exc)

    def do_POST(self) -> None:  # noqa: N802
        try:
            path = urlparse(self.path).path.rstrip("/")
            parts = path.strip("/").split("/")
            payload = self._body()
            if path == "/query":
                self._query(payload)
                return
            body = self._route_post(path, parts, payload)
            self._send_json(200, protocol.ok(body))
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self._fail(exc)

    def _route_post(
        self, path: str, parts: list[str], payload: dict
    ) -> dict:
        service = self.service
        if path == "/ontologies":
            return service.register_ontology(
                protocol.require(payload, "name"),
                protocol.require(payload, "adjacency"),
            )
        if path == "/articulate":
            sources = protocol.require(payload, "sources", list)
            if not all(isinstance(s, str) for s in sources):
                raise ProtocolError("field 'sources' must be a string list")
            return service.articulate(
                protocol.require(payload, "name"),
                sources,
                protocol.optional(payload, "rules", str, "") or "",
            )
        if path == "/refresh":
            return service.refresh()
        if path == "/sessions":
            return service.create_session()
        if len(parts) == 3 and parts[0] == "sessions" and parts[2] == "refresh":
            return service.refresh_session(parts[1])
        if len(parts) == 3 and parts[0] == "sessions" and parts[2] == "close":
            return service.close_session(parts[1])
        if path == "/infer":
            return service.infer(payload)
        if path == "/churn":
            return service.churn(
                protocol.require(payload, "source"),
                protocol.require(payload, "mutations", int),
                protocol.optional(payload, "seed", int, 0),
                add_weight=protocol.optional(payload, "add_weight", float, 0.35),
                delete_weight=protocol.optional(
                    payload, "delete_weight", float, 0.25
                ),
                edge_weight=protocol.optional(
                    payload, "edge_weight", float, 0.4
                ),
            )
        if path == "/facts":
            return service.apply_facts(
                protocol.parse_atoms(payload, "adds"),
                protocol.parse_atoms(payload, "retracts"),
            )
        if path == "/kb":
            instances = protocol.require(payload, "instances", list)
            return service.add_instances(
                protocol.require(payload, "source"), instances
            )
        raise ServingError(f"unknown route POST {path!r}")

    def _query(self, payload: dict) -> None:
        text = protocol.require(payload, "query")
        stream = protocol.optional(payload, "stream", bool, True)
        rows, meta = self.service.query(text)
        if not stream:
            self._send_json(200, protocol.ok({"row_data": rows, **meta}))
            return
        self._send_chunked(protocol.jsonl_stream(iter(rows), meta))


class ArticulationServer:
    """The serving endpoint: a threaded HTTP front over one service.

    ``port=0`` binds an ephemeral port (tests, the load generator);
    the bound address is ``server.host`` / ``server.port``.  Use as a
    context manager or call :meth:`start` / :meth:`stop` explicitly —
    ``start`` runs ``serve_forever`` on a daemon thread and returns.
    """

    def __init__(
        self,
        service: ArticulationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        # Small keep-alive responses otherwise stall ~40ms per round
        # trip on Nagle + delayed ACK.
        self.httpd.RequestHandlerClass.disable_nagle_algorithm = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ArticulationServer":
        if self._thread is not None:
            raise ServingError("server already started")
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name=f"onion-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Run in the calling thread (the ``onion serve`` CLI path)."""
        try:
            self.httpd.serve_forever()
        finally:
            self.httpd.server_close()

    def __enter__(self) -> "ArticulationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
