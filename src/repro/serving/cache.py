"""The server-wide query-result cache.

Sits *in front of* the planner's LRU plan cache: a hit returns the
finished result rows without planning, reformulating, or scanning any
backend at all.  Entries are keyed on

``(kind, request text, articulation fingerprint, engine version)``

so invalidation is structural rather than imperative:

* the **articulation fingerprint**
  (:meth:`~repro.core.articulation.Articulation.fingerprint`) moves
  whenever a bridge, conversion function, rule, or source graph
  changes — exactly the plan-cache invalidation contract, reused as
  the HTTP cache key;
* the **engine version** is the serving tier's publication counter,
  bumped by every write the
  :class:`~repro.serving.service.ArticulationService` publishes
  (churn batches, refreshes, raw fact diffs) — it covers inference
  results, whose closure can change even when the articulation
  fingerprint does not (a raw ``/facts`` diff).

Stale keys can therefore never hit; :meth:`invalidate` additionally
drops them eagerly on the churn path so memory is not held by history.
All operations take one small lock — the cache is shared by every
request thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["QueryResultCache"]


class QueryResultCache:
    """A thread-safe LRU over finished query results."""

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    @staticmethod
    def key(
        kind: str, text: str, fingerprint: object, engine_version: int
    ) -> tuple:
        """The cache key for one request against one published state."""
        return (kind, text, fingerprint, engine_version)

    def get(self, key: tuple):
        """The cached value, or None — and it counts a hit or miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every entry (the churn path); returns how many died."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += 1
            return dropped

    def stats(self) -> dict[str, int | float]:
        """Hit/miss counters and the derived hit rate."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "invalidations": self._invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
