"""The articulation service: shared engine state behind the HTTP tier.

:class:`ArticulationService` owns everything the server's request
threads share — the articulation, the inference engine, the per-source
instance stores, the query engine, the result cache, and the session
table — and arbitrates access with one readers-writer lock:

* **reads** (queries, inference, stats) take the read side and run
  concurrently; the service saturates before every publish, so a read
  never mutates engine state;
* **writes** (churn batches, refreshes, raw fact diffs, ontology and
  instance registration) take the write side, run one at a time, and
  end in :meth:`_publish` — saturate to fixpoint, bump the publication
  counter, invalidate the result cache;
* **session reads** take no lock at all: a session answers from a
  frozen snapshot store (see :mod:`repro.serving.session`), and the
  write path detaches the live engine onto a private copy
  (:meth:`~repro.inference.horn.HornEngine.detach_store`) before
  mutating anything a session pins.

Durability rides the PR 7 machinery: constructed with a journal path,
every published diff is write-ahead journaled by the Horn engine's
:meth:`~repro.inference.horn.HornEngine.apply_batch`, and a service
started over a non-empty journal recovers straight to the pre-crash
fixpoint (:meth:`ChurnJournal.recover`) and serves inference from it
before any articulation is even installed.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.maintenance import ArticulationMaintainer
from repro.core.rules import parse_rules
from repro.errors import ProtocolError, ServingError
from repro.formats import adjacency
from repro.inference.engine import IMPLIES, OntologyInferenceEngine
from repro.inference.horn import FactStore, HornEngine, is_ground
from repro.query.engine import QueryEngine
from repro.reliability.journal import ChurnJournal
from repro.serving.cache import QueryResultCache
from repro.serving.protocol import (
    INFER_OPS,
    parse_atom,
    parse_atoms,
    require,
    optional,
    row_to_wire,
)
from repro.serving.session import Session, SessionManager, snapshot_query
from repro.workloads.churn import apply_churn

__all__ = ["ArticulationService", "load_paper_workload"]

_ENGINE_EPOCH = "onion-serving/1"  # protocol+engine revision in cache keys


class _RWLock:
    """A writer-preferring readers-writer lock.

    Queries share the read side; churn serializes on the write side.
    A waiting writer blocks *new* readers, so a steady query stream
    cannot starve churn.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class ArticulationService:
    """Thread-safe facade over one articulation's engines."""

    def __init__(
        self,
        *,
        pushdown: bool = False,
        plan_cache_size: int = 128,
        result_cache_size: int = 512,
        session_limit: int = 256,
        journal_path: str | None = None,
        snapshot_every: int = 32,
        storage: str = "memory",
        storage_path: str | None = None,
        buffer_facts: int | None = None,
        workers: int = 1,
        retry_policy=None,
        fault_plan=None,
    ) -> None:
        self.pushdown = pushdown
        self.plan_cache_size = plan_cache_size
        self.storage = storage
        self.storage_path = storage_path
        self.buffer_facts = buffer_facts
        self.workers = workers
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.snapshot_every = snapshot_every

        self._rw = _RWLock()
        self.sessions = SessionManager(limit=session_limit)
        self.cache = QueryResultCache(maxsize=result_cache_size)

        self._ontologies: dict[str, object] = {}
        self._articulation: Articulation | None = None
        self._maintainer: ArticulationMaintainer | None = None
        self._inference: OntologyInferenceEngine | None = None
        self._recovered: HornEngine | None = None
        self._stores: dict[str, object] = {}
        self._query_engine: QueryEngine | None = None

        #: publication counter — part of every result-cache key, so a
        #: key minted before a write can never hit after it.
        self.engine_version = 0
        self.started = perf_counter()
        self._counts = {
            "queries": 0,
            "infers": 0,
            "churn_batches": 0,
            "fact_batches": 0,
            "detaches": 0,
            "snapshots": 0,
        }
        self._batches_since_snapshot = 0
        self.recovery: dict[str, object] | None = None

        self.journal: ChurnJournal | None = None
        if journal_path is not None:
            self.journal = ChurnJournal(journal_path)
            if self.journal.records():
                horn, report = self.journal.recover(
                    storage=storage,
                    storage_path=storage_path,
                    buffer_facts=buffer_facts,
                    workers=workers,
                    retry_policy=retry_policy,
                    fault_plan=fault_plan,
                )
                self._recovered = horn
                self.recovery = report
                self.engine_version += 1

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------
    def _horn(self) -> HornEngine:
        """The live Horn engine: articulation-backed or recovered."""
        if self._inference is not None:
            return self._inference.engine
        if self._recovered is not None:
            return self._recovered
        raise ServingError(
            "no articulation loaded (and no journal to recover from)"
        )

    def _fingerprint(self) -> object:
        if self._articulation is not None:
            return self._articulation.fingerprint()
        return None

    def _prepare_write(self) -> None:
        """Freeze the current store if any live session pins it.

        Called under the write lock, before the first mutation.  The
        engine moves onto a private O(closure) copy; pinned sessions
        keep answering the frozen fixpoint untouched.
        """
        try:
            horn = self._horn()
        except ServingError:
            return
        if self.sessions.pins(horn.store):
            horn.detach_store()
            self._counts["detaches"] += 1

    def _publish(self, *, journaled_batch: bool = False) -> None:
        """Reach fixpoint and make the new state visible to readers."""
        horn = self._horn()
        horn.saturate()
        self.engine_version += 1
        self.cache.invalidate()
        if self.journal is None:
            return
        if journaled_batch:
            self._batches_since_snapshot += 1
            if self._batches_since_snapshot < self.snapshot_every:
                return
        # Compact: either the mutation bypassed apply_batch (rebuild,
        # install, instance edits) or the log grew long enough that
        # replay would dominate recovery.
        self.journal.snapshot(horn)
        self._counts["snapshots"] += 1
        self._batches_since_snapshot = 0

    # ------------------------------------------------------------------
    # state installation (write side)
    # ------------------------------------------------------------------
    def register_ontology(self, name: str, text: str) -> dict[str, object]:
        """Parse and stage an adjacency-format ontology for articulation."""
        ontology = adjacency.loads(text, name=name)
        with self._rw.write():
            self._ontologies[name] = ontology
        return {
            "name": ontology.name,
            "terms": ontology.term_count(),
            "edges": ontology.graph.edge_count(),
        }

    def articulate(
        self, name: str, sources: list[str], rules_text: str = ""
    ) -> dict[str, object]:
        """Generate and install an articulation over staged ontologies."""
        with self._rw.write():
            missing = [s for s in sources if s not in self._ontologies]
            if missing:
                raise ServingError(
                    f"unregistered source ontologies: {sorted(missing)}"
                )
            generator = ArticulationGenerator(
                [self._ontologies[s] for s in sources], name=name
            )
            articulation = generator.generate(parse_rules(rules_text))
            return self._install_locked(articulation, stores=None)

    def install(
        self,
        articulation: Articulation,
        stores: dict[str, object] | None = None,
    ) -> dict[str, object]:
        """Install a ready-made articulation (plus instance stores)."""
        with self._rw.write():
            return self._install_locked(articulation, stores)

    def _install_locked(
        self,
        articulation: Articulation,
        stores: dict[str, object] | None,
    ) -> dict[str, object]:
        self._prepare_write()
        self._articulation = articulation
        self._maintainer = ArticulationMaintainer(articulation)
        for source_name, ontology in articulation.sources.items():
            self._ontologies[source_name] = ontology
        # an explicit storage_path belongs to journal recovery (the
        # ingest handoff); a freshly installed articulation must start
        # from an empty store, so its paged engine gets a temp file
        self._inference = OntologyInferenceEngine(
            storage=self.storage,
            buffer_facts=self.buffer_facts,
            workers=self.workers,
            retry_policy=self.retry_policy,
            fault_plan=self.fault_plan,
            journal=self.journal,
        )
        self._inference.refresh_from_articulation(articulation)
        self._recovered = None
        self._stores = dict(stores or {})
        self._query_engine = QueryEngine(
            articulation,
            self._stores,
            pushdown=self.pushdown,
            plan_cache_size=self.plan_cache_size,
        )
        self._publish()
        return {
            "articulation": articulation.name,
            "sources": sorted(articulation.sources),
            "facts": self._inference.fact_count(),
            "engine_version": self.engine_version,
            "refresh": dict(self._inference.last_refresh),
        }

    def add_instances(
        self, source: str, instances: list[dict]
    ) -> dict[str, object]:
        """Load instance rows into one source's knowledge base."""
        with self._rw.write():
            store = self._stores.get(source)
            if store is None:
                raise ServingError(
                    f"no instance store for source {source!r}; "
                    f"known: {sorted(self._stores)}"
                )
            added = 0
            for item in instances:
                if not isinstance(item, dict):
                    raise ProtocolError(
                        f"an instance is an object, got {item!r}"
                    )
                instance_id = require(item, "id")
                cls = require(item, "cls")
                values = item.get("values", {})
                if not isinstance(values, dict):
                    raise ProtocolError("instance 'values' must be an object")
                store.add(instance_id, cls, **values)
                added += 1
            # instance rows feed /query results but not the closure, so
            # this publish is cache bookkeeping, not engine work
            self.engine_version += 1
            self.cache.invalidate()
            return {"source": source, "added": added}

    # ------------------------------------------------------------------
    # mutation (write side)
    # ------------------------------------------------------------------
    def refresh(self) -> dict[str, object]:
        """Re-extract the loaded articulation; incremental when possible."""
        with self._rw.write():
            if self._inference is None or self._articulation is None:
                raise ServingError("no articulation loaded")
            self._prepare_write()
            report = self._inference.refresh_from_articulation(
                self._articulation
            )
            mode = str(report["mode"])
            if mode == "noop":
                return {"refresh": dict(report), "engine_version": self.engine_version}
            self._publish(
                journaled_batch=mode
                in ("incremental", "retract", "replay", "batch-rebuild")
            )
            return {
                "refresh": dict(report),
                "engine_version": self.engine_version,
            }

    def churn(
        self,
        source: str,
        mutations: int,
        seed: int = 0,
        *,
        add_weight: float = 0.35,
        delete_weight: float = 0.25,
        edge_weight: float = 0.4,
    ) -> dict[str, object]:
        """One background-churn batch: mutate a source, repair, refresh.

        The weights control the mutation mix (see
        :func:`~repro.workloads.churn.apply_churn`); a load generator
        that must keep its query classes alive sets ``delete_weight``
        to zero — edge deletions still flow, so the DRed retraction
        path stays exercised.
        """
        with self._rw.write():
            if self._articulation is None or self._maintainer is None:
                raise ServingError("no articulation loaded")
            if source not in self._articulation.sources:
                raise ServingError(
                    f"unknown source {source!r}; known: "
                    f"{sorted(self._articulation.sources)}"
                )
            if mutations < 1:
                raise ServingError(
                    f"mutations must be >= 1, got {mutations!r}"
                )
            self._prepare_write()
            report = apply_churn(
                self._articulation.sources[source],
                n_mutations=mutations,
                seed=seed,
                add_weight=add_weight,
                delete_weight=delete_weight,
                edge_weight=edge_weight,
            )
            maintenance = self._maintainer.apply_source_changes(
                source, report.touched_terms()
            )
            refresh = self._inference.refresh_from_articulation(
                self._articulation
            )
            mode = str(refresh["mode"])
            self._publish(
                journaled_batch=mode
                in ("incremental", "retract", "replay", "batch-rebuild")
            )
            self._counts["churn_batches"] += 1
            return {
                "source": source,
                "mutations": len(report),
                "touched": sorted(report.touched_terms()),
                "repaired": bool(maintenance.required_work),
                "refresh": dict(refresh),
                "engine_version": self.engine_version,
            }

    def apply_facts(
        self,
        adds: list[tuple[str, ...]],
        retracts: list[tuple[str, ...]],
    ) -> dict[str, object]:
        """Apply a raw journaled fact diff to the live Horn engine.

        The escape hatch below the articulation layer: diffs land as
        one write-ahead-journaled
        :meth:`~repro.inference.horn.HornEngine.apply_batch`, which is
        what the kill-and-restart recovery contract exercises.
        """
        for atom in list(adds) + list(retracts):
            if not is_ground(atom):
                raise ProtocolError(
                    f"fact diffs must be ground atoms, got {atom!r}"
                )
        with self._rw.write():
            horn = self._horn()
            self._prepare_write()
            report = horn.apply_batch(adds, retracts, saturate=True)
            self._publish(journaled_batch=True)
            self._counts["fact_batches"] += 1
            out = {
                "added": int(report["added"]),
                "retracted": int(report["retracted"]),
                "decision": report["decision"],
                "engine_version": self.engine_version,
            }
            if "journal_seq" in report:
                out["journal_seq"] = report["journal_seq"]
            return out

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def create_session(self) -> dict[str, object]:
        """Open a session pinned to the current published fixpoint.

        Takes the write side: session creation is rare, and creating
        under the writer lock makes pin-tracking race-free — a writer
        can never be mid-mutation while a session pins the store.
        """
        with self._rw.write():
            horn = self._horn()
            horn.saturate()
            session = self.sessions.create(horn.store, self.engine_version)
            return {
                "session": session.session_id,
                "engine_version": session.engine_version,
            }

    def refresh_session(self, session_id: str) -> dict[str, object]:
        """Re-pin a session onto the currently published fixpoint."""
        with self._rw.write():
            horn = self._horn()
            horn.saturate()
            session = self.sessions.refresh(
                session_id, horn.store, self.engine_version
            )
            return {
                "session": session.session_id,
                "engine_version": session.engine_version,
            }

    def close_session(self, session_id: str) -> dict[str, object]:
        return {"closed": self.sessions.close(session_id)}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def infer(self, payload: dict) -> dict[str, object]:
        """Answer one inference request (optionally inside a session)."""
        op = require(payload, "op")
        if op not in INFER_OPS:
            raise ProtocolError(
                f"unknown op {op!r}; known: {sorted(INFER_OPS)}"
            )
        session_id = optional(payload, "session")
        self._counts["infers"] += 1
        text = json.dumps(
            {k: payload[k] for k in sorted(payload) if k != "session"},
            sort_keys=True,
        )
        if session_id is not None:
            session = self.sessions.get(session_id)
            # The version in the key is the session's *pinned* one,
            # read from the session state itself — never
            # self.engine_version, which a concurrent publication can
            # bump between our version-read and the cache insert and
            # so file a pinned-snapshot answer under the live version.
            # The pinned version fully identifies the frozen fixpoint,
            # so no live field (fingerprint included) belongs here.
            cache_key = QueryResultCache.key(
                "infer-session",
                text,
                None,
                (session.engine_version, _ENGINE_EPOCH),
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                result = dict(cached)
                result["cached"] = True
                return result
            result = self._infer_against(payload, op, session=session)
            self.cache.put(cache_key, result)
            result = dict(result)
            result["cached"] = False
            return result

        provisional = QueryResultCache.key(
            "infer",
            text,
            self._fingerprint(),
            (self.engine_version, _ENGINE_EPOCH),
        )
        cached = self.cache.get(provisional)
        if cached is not None:
            result = dict(cached)
            result["cached"] = True
            return result
        with self._rw.read():
            # Re-mint under the read lock: writers are excluded here,
            # so the version, the fingerprint, the computed answer and
            # the inserted entry all describe the same publication —
            # the provisional key above is only a lock-free fast path.
            cache_key = QueryResultCache.key(
                "infer",
                text,
                self._fingerprint(),
                (self.engine_version, _ENGINE_EPOCH),
            )
            result = self._infer_against(payload, op, session=None)
            self.cache.put(cache_key, result)
        result = dict(result)
        result["cached"] = False
        return result

    def _infer_against(
        self, payload: dict, op: str, session: Session | None
    ) -> dict[str, object]:
        """Evaluate one op on the live engine or a session snapshot.

        Both paths evaluate the *same* ``implies`` patterns, so a
        session's answers differ from the live engine's only by the
        fixpoint they observe — the isolation contract the tests pin.
        """

        def bindings(pattern: tuple[str, ...]) -> list[dict[str, str]]:
            if session is not None:
                return session.query(pattern)
            return self._horn().query(pattern)

        if op == "pattern":
            pattern = parse_atom(require(payload, "atom", list))
            if is_ground(pattern):
                if session is not None:
                    holds = session.holds(pattern)
                else:
                    holds = self._horn().holds(pattern)
                return {"op": op, "holds": holds}
            return {"op": op, "bindings": bindings(pattern)}
        if op == "implies":
            specific = require(payload, "term")
            general = require(payload, "general")
            holds = specific == general or bool(
                bindings((IMPLIES, specific, general))
            )
            return {"op": op, "holds": bool(holds)}
        term = require(payload, "term")
        if op == "generalizations":
            pattern = (IMPLIES, term, "?x")
        else:  # specializations
            pattern = (IMPLIES, "?x", term)
        terms = sorted({b["?x"] for b in bindings(pattern)})
        return {"op": op, "term": term, "terms": terms}

    def query(self, text: str) -> tuple[list[dict], dict[str, object]]:
        """Run a cross-source query; returns wire rows plus metadata."""
        if self._query_engine is None:
            raise ServingError("no articulation loaded; queries unavailable")
        self._counts["queries"] += 1
        provisional = QueryResultCache.key(
            "query",
            text,
            self._fingerprint(),
            (self.engine_version, _ENGINE_EPOCH),
        )
        cached = self.cache.get(provisional)
        if cached is not None:
            return list(cached), {
                "rows": len(cached),
                "cached": True,
                "engine_version": self.engine_version,
            }
        with self._rw.read():
            # same discipline as infer(): key minted where writers are
            # excluded, so key and rows describe one publication
            cache_key = QueryResultCache.key(
                "query",
                text,
                self._fingerprint(),
                (self.engine_version, _ENGINE_EPOCH),
            )
            rows = [
                row_to_wire(row) for row in self._query_engine.execute(text)
            ]
            self.cache.put(cache_key, rows)
        return rows, {
            "rows": len(rows),
            "cached": False,
            "engine_version": self.engine_version,
        }

    def session_closure_terms(self, session_id: str, term: str) -> list[str]:
        """A session's view of ``generalizations(term)`` (test hook)."""
        session = self.sessions.get(session_id)
        return sorted(
            {b["?x"] for b in snapshot_query(session.store, (IMPLIES, term, "?x"))}
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health(self) -> dict[str, object]:
        ready = self._inference is not None or self._recovered is not None
        body: dict[str, object] = {
            "status": "ok" if ready else "empty",
            "articulation": (
                self._articulation.name if self._articulation else None
            ),
            "recovered": self._recovered is not None,
            "engine_version": self.engine_version,
            "uptime_s": perf_counter() - self.started,
        }
        if ready:
            with self._rw.read():
                body["facts"] = self._horn().fact_count()
        return body

    def stats(self) -> dict[str, object]:
        body: dict[str, object] = {
            "engine_version": self.engine_version,
            "counts": dict(self._counts),
            "cache": self.cache.stats(),
            "sessions": self.sessions.stats(),
            "ontologies": sorted(self._ontologies),
            "stores": sorted(self._stores),
        }
        if self.recovery is not None:
            body["recovery"] = dict(self.recovery)
        if self._query_engine is not None:
            info = self._query_engine.plan_cache_info()
            body["plan_cache"] = {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
            }
        if self.journal is not None:
            body["journal"] = {
                "path": str(self.journal.path),
                "pending": len(self.journal.pending()),
            }
        return body


def load_paper_workload(
    service: ArticulationService,
    *,
    backend_factory=None,
) -> dict[str, object]:
    """Install the paper's Fig. 2 transport articulation and stores.

    The one-call serving fixture: the carrier/factory ontologies, the
    currency/weight conversion bridges, and both instance stores
    (optionally cloned onto backends from ``backend_factory(name)``).
    """
    from repro.workloads.paper_example import (
        carrier_store,
        factory_store,
        generate_transport_articulation,
    )

    articulation = generate_transport_articulation()
    stores = {"carrier": carrier_store(), "factory": factory_store()}
    if backend_factory is not None:
        stores = {
            name: store.clone(backend_factory(name))
            for name, store in stores.items()
        }
    return service.install(articulation, stores=stores)
