"""ONION — A Graph-Oriented Model for Articulation of Ontology
Interdependencies (Mitra, Wiederhold & Kersten, EDBT 2000).

A full reproduction of the ONION system: the graph-oriented ontology
model, graph patterns, transformation primitives, articulation rules
and generator, the ontology algebra (filter/extract/union/intersection/
difference), a Horn-clause inference engine, the SKAT semi-automatic
articulation tool with a WordNet-substitute lexicon, knowledge-base
wrappers, a cross-ontology query processor, and the expert viewer
session.

Quickstart::

    from repro import Ontology, parse_rules, ArticulationGenerator

    carrier = Ontology("carrier")
    carrier.add_term("Car")
    factory = Ontology("factory")
    factory.add_term("Vehicle")

    rules = parse_rules("carrier:Car => factory:Vehicle")
    art = ArticulationGenerator([carrier, factory],
                                name="transport").generate(rules)
    print(sorted(art.ontology.terms()))   # ['Vehicle']
"""

from repro.core import (
    Articulation,
    ArticulationGenerator,
    ArticulationRuleSet,
    Edge,
    FunctionalRule,
    ImplicationRule,
    LabeledGraph,
    MatchConfig,
    Ontology,
    Pattern,
    RelationRegistry,
    RelationType,
    TermRef,
    TransformLog,
    UnifiedOntology,
    compose,
    difference,
    extract_ontology,
    filter_ontology,
    find_matches,
    intersection,
    parse_pattern,
    parse_rule,
    parse_rules,
    qualify,
    split_qualified,
    standard_registry,
    union,
)
from repro.errors import OnionError
from repro.inference import HornEngine, OntologyInferenceEngine

__version__ = "1.0.0"

__all__ = [
    "Articulation",
    "ArticulationGenerator",
    "ArticulationRuleSet",
    "Edge",
    "FunctionalRule",
    "HornEngine",
    "ImplicationRule",
    "LabeledGraph",
    "MatchConfig",
    "OnionError",
    "Ontology",
    "OntologyInferenceEngine",
    "Pattern",
    "RelationRegistry",
    "RelationType",
    "TermRef",
    "TransformLog",
    "UnifiedOntology",
    "__version__",
    "compose",
    "difference",
    "extract_ontology",
    "filter_ontology",
    "find_matches",
    "intersection",
    "parse_pattern",
    "parse_rule",
    "parse_rules",
    "qualify",
    "split_qualified",
    "standard_registry",
    "union",
]
