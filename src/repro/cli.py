"""The ``onion`` command-line interface.

The GUI-less face of the ONION toolkit: convert ontology
representations, inspect and validate them, ask SKAT for bridge
suggestions, generate articulations from rule files, run the algebra,
and query knowledge bases across sources.

Examples::

    onion convert carrier.adj carrier.xml
    onion render carrier.adj
    onion validate carrier.adj factory.adj
    onion suggest carrier.adj factory.adj --min-score 0.8
    onion articulate carrier.adj factory.adj --rules rules.txt \\
          --name transport --dot articulation.dot
    onion algebra difference carrier.adj factory.adj --rules rules.txt
    onion query "SELECT price FROM transport:Vehicle" \\
          carrier.adj factory.adj --rules rules.txt \\
          --kb carrier=carrier.json --kb factory=factory.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.algebra import difference, intersection, union
from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import ArticulationRuleSet, parse_rules
from repro.errors import OnionError
from repro.formats import adjacency, dot, idl, rdf, xmlfmt
from repro.kb.backends import BACKENDS, SQLiteBackend
from repro.kb.serialize import load_store
from repro.lexicon.skat import SkatEngine
from repro.lexicon.wordnet import MiniWordNet
from repro.query.engine import QueryEngine
from repro.query.mediator import generate_mediator
from repro.query.planner import Planner
from repro.viewer.render import render_articulation, render_ontology

__all__ = ["main", "build_parser"]

_LOADERS = {
    ".adj": adjacency.load,
    ".txt": adjacency.load,
    ".xml": xmlfmt.load,
    ".idl": idl.load,
    ".nt": rdf.load,
    ".rdf": rdf.load,
}
_DUMPERS = {
    ".adj": adjacency.dumps,
    ".txt": adjacency.dumps,
    ".xml": xmlfmt.dumps,
    ".idl": idl.dumps,
    ".nt": rdf.dumps,
    ".rdf": rdf.dumps,
    ".dot": None,  # handled specially (needs the dot module)
}


def load_ontology(path: str) -> Ontology:
    """Load an ontology, picking the format from the file extension."""
    suffix = Path(path).suffix.lower()
    loader = _LOADERS.get(suffix)
    if loader is None:
        raise OnionError(
            f"cannot infer format from {path!r}; known extensions: "
            f"{sorted(_LOADERS)}"
        )
    return loader(path)


def dump_ontology(ontology: Ontology, path: str) -> None:
    suffix = Path(path).suffix.lower()
    if suffix == ".dot":
        Path(path).write_text(dot.ontology_to_dot(ontology))
        return
    dumper = _DUMPERS.get(suffix)
    if dumper is None:
        raise OnionError(
            f"cannot infer format from {path!r}; known extensions: "
            f"{sorted(_DUMPERS)}"
        )
    Path(path).write_text(dumper(ontology))


def _load_rules(path: str | None) -> ArticulationRuleSet:
    if path is None:
        return ArticulationRuleSet()
    return parse_rules(Path(path).read_text())


def _articulate(
    sources: list[Ontology], rules_path: str | None, name: str
) -> Articulation:
    generator = ArticulationGenerator(sources, name=name)
    return generator.generate(_load_rules(rules_path))


# ----------------------------------------------------------------------
# subcommand implementations (each returns a process exit code)
# ----------------------------------------------------------------------
def cmd_convert(args: argparse.Namespace) -> int:
    ontology = load_ontology(args.input)
    dump_ontology(ontology, args.output)
    print(f"wrote {args.output} ({ontology.term_count()} terms, "
          f"{ontology.graph.edge_count()} relationships)")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    print(render_ontology(load_ontology(args.ontology)))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.ontologies:
        ontology = load_ontology(path)
        issues = ontology.validate()
        status = "OK" if not issues else f"{len(issues)} issue(s)"
        print(f"{path}: {status}")
        for issue in issues:
            print(f"  - {issue}")
        failures += bool(issues)
    return 1 if failures else 0


def cmd_suggest(args: argparse.Namespace) -> int:
    left = load_ontology(args.left)
    right = load_ontology(args.right)
    lexicon = (
        MiniWordNet.load(args.lexicon) if args.lexicon else None
    )
    skat = SkatEngine.default(lexicon)
    candidates = skat.propose(left, right)
    shown = 0
    for candidate in candidates:
        if candidate.score < args.min_score:
            continue
        shown += 1
        print(f"[{candidate.score:4.2f} {candidate.matcher:10s}] "
              f"{candidate.rule}")
        if args.why:
            print(f"       {candidate.reason}")
    print(f"{shown} suggestion(s) at or above score {args.min_score}")
    return 0


def cmd_articulate(args: argparse.Namespace) -> int:
    sources = [load_ontology(path) for path in args.sources]
    articulation = _articulate(sources, args.rules, args.name)
    print(render_articulation(articulation))
    if args.dot:
        Path(args.dot).write_text(dot.articulation_to_dot(articulation))
        print(f"\nwrote {args.dot}")
    return 0


def cmd_algebra(args: argparse.Namespace) -> int:
    left = load_ontology(args.left)
    right = load_ontology(args.right)
    rules = _load_rules(args.rules)
    if args.operation == "union":
        unified = union(left, right, rules, name=args.name)
        graph = unified.graph()
        print(f"union (virtual): {graph.node_count()} nodes, "
              f"{graph.edge_count()} edges")
        for edge in sorted(
            graph.edges(), key=lambda e: (e.source, e.label, e.target)
        ):
            print(f"  {edge.source} -{edge.label}-> {edge.target}")
    elif args.operation == "intersection":
        result = intersection(left, right, rules, name=args.name)
        print(render_ontology(result))
    else:  # difference
        result = difference(
            left,
            right,
            rules,
            articulation_name=args.name,
            strategy=args.strategy,
        )
        print(render_ontology(result))
    return 0


def cmd_mediator(args: argparse.Namespace) -> int:
    sources = [load_ontology(path) for path in args.sources]
    articulation = _articulate(sources, args.rules, args.name)
    spec = generate_mediator(articulation)
    text = spec.to_odl()
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(spec.classes)} interface(s))")
    else:
        print(text, end="")
    return 0


def _parse_kb_specs(
    args: argparse.Namespace, articulation: Articulation
) -> list[tuple[str, str]]:
    """Validate ``--kb``/``--db`` arguments; returns (source, path)
    pairs without touching any instance data."""
    if args.db and args.backend != "sqlite":
        raise OnionError("--db only applies to --backend sqlite")
    specs = []
    for spec in args.kb:
        if "=" not in spec:
            raise OnionError(
                f"--kb needs the form source=instances.json, got {spec!r}"
            )
        source_name, kb_path = spec.split("=", 1)
        if source_name not in articulation.sources:
            raise OnionError(f"--kb names unknown source {source_name!r}")
        specs.append((source_name, kb_path))
    return specs


def _load_stores(args: argparse.Namespace, articulation: Articulation):
    """Load ``--kb source=file.json`` stores, migrating them onto the
    selected storage backend (``--backend sqlite`` persists under
    ``--db DIR``, one database per source, or in-memory SQLite)."""
    stores = {}
    for source_name, kb_path in _parse_kb_specs(args, articulation):
        store = load_store(kb_path, articulation.sources[source_name])
        if args.backend == "sqlite":
            if args.db:
                db_dir = Path(args.db)
                try:
                    db_dir.mkdir(parents=True, exist_ok=True)
                except (FileExistsError, NotADirectoryError):
                    raise OnionError(
                        f"--db must name a directory, and {args.db!r} "
                        "is an existing file"
                    ) from None
                backend = SQLiteBackend(db_dir / f"{source_name}.sqlite")
            else:
                backend = SQLiteBackend()
            # The --kb JSON is the source of truth: a reused database
            # must not keep rows the JSON no longer contains.
            backend.clear()
            store = store.clone(backend)
        stores[source_name] = store
    return stores


def cmd_query(args: argparse.Namespace) -> int:
    sources = [load_ontology(path) for path in args.sources]
    articulation = _articulate(sources, args.rules, args.name)
    stores = _load_stores(args, articulation)
    engine = QueryEngine(articulation, stores, pushdown=args.pushdown)
    plan = engine.plan(args.query)
    if args.explain:
        print(plan.describe())
        print()
    rows = engine.run(plan)
    for row in rows:
        values = ", ".join(
            f"{key}={value!r}" for key, value in sorted(row.values.items())
        )
        print(f"{row.source}:{row.instance_id} [{row.cls}] {values}")
    print(f"({len(rows)} row(s))")
    return 0


def build_server(args: argparse.Namespace):
    """Build the articulation server an ``onion serve`` invocation
    describes, without starting it (tests bind ephemeral ports)."""
    from repro.serving import (
        ArticulationServer,
        ArticulationService,
        load_paper_workload,
    )

    service = ArticulationService(
        pushdown=args.pushdown,
        result_cache_size=args.cache_size,
        session_limit=args.sessions,
        journal_path=args.journal,
        storage=args.storage,
        storage_path=args.storage_db,
        buffer_facts=args.buffer_facts,
        workers=args.workers,
    )
    if args.workload == "paper":
        backend_factory = None
        if args.backend == "sqlite":
            if args.db:
                db_dir = Path(args.db)
                db_dir.mkdir(parents=True, exist_ok=True)
                backend_factory = lambda name: SQLiteBackend(  # noqa: E731
                    db_dir / f"{name}.sqlite"
                )
            else:
                backend_factory = lambda name: SQLiteBackend()  # noqa: E731
        load_paper_workload(service, backend_factory=backend_factory)
    elif args.sources:
        if len(args.sources) < 2:
            raise OnionError(
                "serve needs at least two source ontologies (or "
                "--workload paper)"
            )
        sources = [load_ontology(path) for path in args.sources]
        articulation = _articulate(sources, args.rules, args.name)
        stores = _load_stores(args, articulation)
        service.install(articulation, stores=stores)
    # with neither sources nor a workload the server starts empty:
    # ontologies arrive over POST /ontologies + /articulate (or a
    # journal recovery already primed the engine)
    return ArticulationServer(service, host=args.host, port=args.port)


def cmd_serve(args: argparse.Namespace) -> int:
    server = build_server(args)
    print(f"serving on {server.address}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.kb.ingest import ingest_facts, iter_fact_file
    from repro.kb.pagestore import DEFAULT_BUFFER_FACTS

    report = ingest_facts(
        args.db,
        iter_fact_file(args.facts, fmt=args.fmt),
        batch_size=args.batch_size,
        buffer_facts=(
            args.buffer_facts
            if args.buffer_facts is not None
            else DEFAULT_BUFFER_FACTS
        ),
        journal_path=args.journal,
    )
    print(
        f"ingested {report['added']} fact(s) into {report['db']} "
        f"({report['staged']} staged, {report['deduplicated']} duplicate(s), "
        f"{report['batches']} batch(es), {report['elapsed_ms']:.0f}ms)"
    )
    if report["journaled"]:
        print(f"journaled snapshot of {report['journaled']} fact(s)")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.workloads.loadgen import run_load

    report = run_load(
        args.host,
        args.port,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        zipf_s=args.zipf_s,
        churn_batches=args.churn_batches,
        churn_mutations=args.churn_mutations,
    )
    payload = report.to_dict()
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{payload['requests']} requests from {payload['clients']} "
            f"clients in {payload['duration_s']}s "
            f"({payload['throughput_rps']} req/s)"
        )
        print(
            f"latency p50 {payload['p50_ms']}ms  p99 {payload['p99_ms']}ms"
            f"  errors {payload['errors']}"
        )
        print(
            f"churn batches {payload['churn_batches']}  cache hit rate "
            f"{payload['cache'].get('hit_rate', 0):.2f}  isolation "
            f"violations {payload['isolation_violations']}"
        )
    return 1 if report.errors or report.isolation_violations else 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the physical plan without executing it — and without
    loading or migrating any instance data.  With ``--kb`` the plan is
    restricted to (and annotated for) the named sources; without,
    every bridged source is planned."""
    from repro.query.parser import parse_query

    sources = [load_ontology(path) for path in args.sources]
    articulation = _articulate(sources, args.rules, args.name)
    names = [name for name, _ in _parse_kb_specs(args, articulation)]
    planner = Planner(articulation, pushdown=args.pushdown)
    plan = planner.plan(
        parse_query(args.query),
        available=frozenset(names) if names else None,
    )
    print(plan.describe())
    for name in sorted(names):
        print(f"backend {name}: {args.backend}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="onion",
        description="ONION: articulation of ontology interdependencies "
        "(EDBT 2000 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser(
        "convert", help="convert between ontology representations"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.set_defaults(fn=cmd_convert)

    render = sub.add_parser("render", help="print an ontology summary")
    render.add_argument("ontology")
    render.set_defaults(fn=cmd_render)

    validate = sub.add_parser(
        "validate", help="check ontology invariants; exit 1 on issues"
    )
    validate.add_argument("ontologies", nargs="+")
    validate.set_defaults(fn=cmd_validate)

    suggest = sub.add_parser(
        "suggest", help="SKAT bridge suggestions between two ontologies"
    )
    suggest.add_argument("left")
    suggest.add_argument("right")
    suggest.add_argument("--lexicon", help="MiniWordNet JSON file")
    suggest.add_argument(
        "--min-score", type=float, default=0.0, dest="min_score"
    )
    suggest.add_argument(
        "--why", action="store_true", help="show each suggestion's reason"
    )
    suggest.set_defaults(fn=cmd_suggest)

    articulate = sub.add_parser(
        "articulate", help="generate an articulation from a rule file"
    )
    articulate.add_argument("sources", nargs="+")
    articulate.add_argument("--rules", help="rule file (one rule per line)")
    articulate.add_argument("--name", default="articulation")
    articulate.add_argument("--dot", help="also write a Graphviz rendering")
    articulate.set_defaults(fn=cmd_articulate)

    algebra = sub.add_parser(
        "algebra", help="run a binary algebra operator on two ontologies"
    )
    algebra.add_argument(
        "operation", choices=["union", "intersection", "difference"]
    )
    algebra.add_argument("left")
    algebra.add_argument("right")
    algebra.add_argument("--rules", help="rule file")
    algebra.add_argument("--name", default="articulation")
    algebra.add_argument(
        "--strategy",
        choices=["conservative", "formal"],
        default="conservative",
        help="difference semantics (see DESIGN.md)",
    )
    algebra.set_defaults(fn=cmd_algebra)

    mediator = sub.add_parser(
        "mediator",
        help="derive an ODMG/ODL mediator spec from an articulation",
    )
    mediator.add_argument("sources", nargs="+")
    mediator.add_argument("--rules", help="rule file")
    mediator.add_argument("--name", default="articulation")
    mediator.add_argument("--out", help="write ODL here instead of stdout")
    mediator.set_defaults(fn=cmd_mediator)

    def add_query_args(command: argparse.ArgumentParser) -> None:
        command.add_argument("query")
        command.add_argument("sources", nargs="+")
        command.add_argument("--rules", help="rule file")
        command.add_argument("--name", default="articulation")
        command.add_argument(
            "--kb",
            action="append",
            default=[],
            metavar="SOURCE=FILE.json",
            help="instance data for one source (repeatable)",
        )
        command.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default="memory",
            help="storage backend the instance data is loaded into",
        )
        command.add_argument(
            "--db",
            help="directory for sqlite databases (one per source); "
            "default is in-memory sqlite",
        )
        command.add_argument(
            "--pushdown",
            action="store_true",
            help="translate WHERE predicates into each source's metric "
            "and evaluate them at the store (SQL for sqlite)",
        )

    query = sub.add_parser(
        "query", help="run a query across articulated sources"
    )
    add_query_args(query)
    query.add_argument(
        "--explain", action="store_true", help="print the execution plan"
    )
    query.set_defaults(fn=cmd_query)

    explain = sub.add_parser(
        "explain",
        help="print the physical plan for a query without running it",
    )
    add_query_args(explain)
    explain.set_defaults(fn=cmd_explain)

    serve = sub.add_parser(
        "serve",
        help="run the articulation server over HTTP",
    )
    serve.add_argument("sources", nargs="*", help="source ontology files")
    serve.add_argument("--rules", help="rule file")
    serve.add_argument("--name", default="articulation")
    serve.add_argument(
        "--kb",
        action="append",
        default=[],
        metavar="SOURCE=FILE.json",
        help="instance data for one source (repeatable)",
    )
    serve.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="memory",
        help="storage backend the instance data is loaded into",
    )
    serve.add_argument(
        "--db",
        help="directory for sqlite databases (one per source)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8707, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--workload",
        choices=["paper"],
        help="serve a built-in workload instead of source files",
    )
    serve.add_argument(
        "--journal",
        help="write-ahead churn journal path (enables crash recovery)",
    )
    serve.add_argument(
        "--sessions", type=int, default=256, help="live session limit"
    )
    serve.add_argument(
        "--cache-size", type=int, default=512, help="query-result LRU size"
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="saturation worker processes"
    )
    serve.add_argument(
        "--storage",
        choices=["memory", "paged"],
        default="memory",
        help="closure fact storage: in-memory dicts or a disk-backed "
        "paged store (bounded memory at any closure size)",
    )
    serve.add_argument(
        "--storage-db",
        dest="storage_db",
        help="paged-store database file (e.g. one produced by "
        "'onion ingest'); default is a private temp file",
    )
    serve.add_argument(
        "--buffer-facts",
        dest="buffer_facts",
        type=int,
        help="paged-store buffer-pool capacity, in facts",
    )
    serve.add_argument(
        "--pushdown",
        action="store_true",
        help="translate WHERE predicates into each source's metric",
    )
    serve.set_defaults(fn=cmd_serve, workload=None)

    ingest = sub.add_parser(
        "ingest",
        help="bulk-load a fact file into a paged-store database",
    )
    ingest.add_argument(
        "facts", help="fact file: JSON-lines arrays or TSV, one atom/line"
    )
    ingest.add_argument(
        "--db", required=True, help="paged-store database file to load into"
    )
    ingest.add_argument(
        "--format",
        choices=["auto", "jsonl", "tsv"],
        default="auto",
        dest="fmt",
        help="fact-file format (default: sniff the first line)",
    )
    ingest.add_argument(
        "--batch-size",
        dest="batch_size",
        type=int,
        default=20000,
        help="facts per executemany staging batch",
    )
    ingest.add_argument(
        "--buffer-facts",
        dest="buffer_facts",
        type=int,
        help="buffer-pool capacity for the load, in facts",
    )
    ingest.add_argument(
        "--journal",
        help="also write the loaded base as one ChurnJournal snapshot "
        "(makes the ingested state the crash-recovery baseline)",
    )
    ingest.set_defaults(fn=cmd_ingest)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running articulation server with concurrent load",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8707)
    loadgen.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    loadgen.add_argument(
        "--requests", type=int, default=40, help="requests per client"
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--zipf-s", type=float, default=1.1, help="Zipf skew exponent"
    )
    loadgen.add_argument("--churn-batches", type=int, default=5)
    loadgen.add_argument("--churn-mutations", type=int, default=3)
    loadgen.add_argument(
        "--json", action="store_true", help="print the full JSON report"
    )
    loadgen.set_defaults(fn=cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except OnionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
