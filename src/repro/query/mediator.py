"""Automatic derivation of ODMG-compliant mediators (paper §1, §2.2).

"Our framework ... will derive ODMG-compliant mediators
automatically."  And §2.2: the expert may "direct the system to
generate wrappers for inclusion in concrete applications using the
onion query engine."

A **mediator specification** is everything an application needs to
program against the articulation as if it were a single ODMG source:

* an ODL interface per articulation class, with the attributes
  available for it (the union of attributes declared on the bridged
  source classes, normalized to lowercase);
* a mapping table: articulation class -> per-source scan lists (the
  same fan-out the query reformulator computes) plus the conversion
  chain for each attribute;
* the articulation's internal SubclassOf structure as ODL inheritance.

:func:`generate_mediator` derives the spec from an articulation alone
— no hand-written views, which is the §1 contrast with Infomaster-
style mediation.
"""

from __future__ import annotations

import logging
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.articulation import Articulation
from repro.core.ontology import qualify, split_qualified
from repro.core.relations import ATTRIBUTE_OF, SUBCLASS_OF
from repro.core.unified import UnifiedOntology
from repro.errors import QueryError
from repro.query.ast import Query
from repro.query.reformulate import SourcePlan, reformulate

__all__ = ["MediatorClass", "MediatorSpec", "generate_mediator"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MediatorClass:
    """One exported articulation class and how to answer for it."""

    name: str
    superclasses: tuple[str, ...]
    attributes: tuple[str, ...]
    # source name -> local class terms to scan (with subclass closure)
    scans: Mapping[str, tuple[str, ...]]
    # attribute -> human-readable conversion description per source
    conversions: Mapping[str, tuple[str, ...]]

    def reachable_sources(self) -> tuple[str, ...]:
        return tuple(sorted(self.scans))


@dataclass(frozen=True)
class MediatorSpec:
    """A full mediator: exported classes plus provenance."""

    articulation_name: str
    classes: tuple[MediatorClass, ...]
    sources: tuple[str, ...]

    def get(self, class_name: str) -> MediatorClass | None:
        for cls in self.classes:
            if cls.name == class_name:
                return cls
        return None

    # ------------------------------------------------------------------
    # ODL rendering
    # ------------------------------------------------------------------
    def to_odl(self) -> str:
        """Render as an ODMG ODL module, mappings as comments."""
        lines = [f"module {self.articulation_name} {{"]
        for cls in self.classes:
            inherit = (
                f" : {', '.join(cls.superclasses)}"
                if cls.superclasses
                else ""
            )
            lines.append(f"  interface {cls.name}{inherit} {{")
            for attribute in cls.attributes:
                lines.append(f"    attribute any {attribute};")
            lines.append("  };")
            for source, classes in sorted(cls.scans.items()):
                lines.append(
                    f"  // {cls.name} <- {source}: {', '.join(classes)}"
                )
            for attribute, chains in sorted(cls.conversions.items()):
                for chain in chains:
                    lines.append(f"  // convert {attribute}: {chain}")
        lines.append("};")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MediatorSpec {self.articulation_name!r} "
            f"classes={len(self.classes)} sources={list(self.sources)}>"
        )


def _attributes_for(
    articulation: Articulation, plans: list[SourcePlan]
) -> tuple[str, ...]:
    """Union of attribute terms declared on the scanned source classes
    (including inherited ones), lowercased."""
    attributes: set[str] = set()
    for plan in plans:
        source = articulation.sources[plan.source]
        code = ATTRIBUTE_OF.code
        for cls in plan.classes:
            terms = {cls} | source.ancestors(cls) | source.descendants(cls)
            for term in terms:
                attributes.update(
                    a.lower() for a in source.graph.predecessors(term, code)
                )
    return tuple(sorted(attributes))


def generate_mediator(articulation: Articulation) -> MediatorSpec:
    """Derive the mediator specification from an articulation.

    Classes with no bridged source (pure structural terms like the
    synthesized ``Euro`` unit) are exported without scans — they exist
    for typing, not for extents.
    """
    unified = UnifiedOntology(articulation)
    classes: list[MediatorClass] = []
    for term in sorted(articulation.ontology.terms()):
        superclasses = tuple(
            sorted(articulation.ontology.superclasses(term))
        )
        # Every term is a distinct one-shot query, so this calls the
        # logical layer directly — a plan cache could never hit here.
        try:
            plans = reformulate(
                Query.over(qualify(articulation.name, term)), unified
            )
        except QueryError as exc:
            # unplannable term (no bridged source): exported without
            # scans.  Anything else — a KeyError, a bug in the planner
            # — must surface, not silently produce an empty mediator.
            logger.debug("term %r exported without scans: %s", term, exc)
            plans = []
        scans = {
            plan.source: plan.classes for plan in plans
        }
        # Conversion descriptions come from a SELECT * style plan.
        conversions: dict[str, list[str]] = {}
        for plan in plans:
            for attribute, conversion in plan.conversions.items():
                conversions.setdefault(attribute, []).append(
                    conversion.describe()
                )
        classes.append(
            MediatorClass(
                name=term,
                superclasses=superclasses,
                attributes=_attributes_for(articulation, plans),
                scans=scans,
                conversions={
                    attr: tuple(sorted(chains))
                    for attr, chains in conversions.items()
                },
            )
        )
    return MediatorSpec(
        articulation_name=articulation.name,
        classes=tuple(classes),
        sources=tuple(sorted(articulation.sources)),
    )
