"""Predicate pushdown through conversion functions.

The executor normally fetches every candidate instance, converts its
values into the query's metric, and only then evaluates WHERE
predicates.  When a conversion chain is invertible and monotone — unit
conversions always are — a *range* predicate can instead be translated
into the source's own metric and evaluated at the store, before any
conversion work:

    WHERE price < 10000        (Euro, at the articulation)
      ==> price < 7111.0       (Pound Sterling, at the carrier)
      ==> price < 22037.1      (Dutch Guilders, at the factory)

Decreasing conversions flip the comparison direction.  Equality and
inequality are *not* pushed (floating-point round-trips through the
inverse could flip an exact comparison); unconvertible attributes and
unknown operators fall back to post-conversion evaluation.  The QUERY
benchmark measures the saving; correctness tests assert pushed and
unpushed plans return identical rows.
"""

from __future__ import annotations

from repro.query.ast import Condition, Query
from repro.query.reformulate import SourcePlan

__all__ = [
    "pushable",
    "push_condition",
    "source_predicate",
    "split_conditions",
]

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_RANGE_OPS = frozenset(_FLIP)


def pushable(condition: Condition, plan: SourcePlan) -> bool:
    """Can this condition be evaluated in the source's metric?

    Conditions on unconverted attributes are trivially pushable (the
    value is already in source metric); converted attributes need a
    range operator, a numeric constant and an invertible chain.
    """
    conversion = plan.conversions.get(condition.attribute)
    if conversion is None:
        return True
    if condition.op not in _RANGE_OPS:
        return False
    if not isinstance(condition.value, (int, float)) or isinstance(
        condition.value, bool
    ):
        return False
    return conversion.invertible


def push_condition(condition: Condition, plan: SourcePlan) -> Condition:
    """Translate one pushable condition into the source's metric."""
    conversion = plan.conversions.get(condition.attribute)
    if conversion is None:
        return condition
    threshold = conversion.apply_inverse(float(condition.value))  # type: ignore[arg-type]
    op = condition.op
    if not conversion.is_increasing():
        op = _FLIP[op]
    return Condition(condition.attribute, op, threshold)


def split_conditions(
    query: Query, plan: SourcePlan
) -> tuple[tuple[Condition, ...], tuple[Condition, ...]]:
    """Split a query's WHERE into ``(pushed, residual)`` for one source.

    ``pushed`` conditions are translated into the source's metric and
    stay *structured*, so a storage backend can evaluate them natively
    (the SQLite backend compiles them to SQL); ``residual`` conditions
    must run post-conversion in the executor.
    """
    pushed: list[Condition] = []
    residual: list[Condition] = []
    for condition in query.where:
        if pushable(condition, plan):
            pushed.append(push_condition(condition, plan))
        else:
            residual.append(condition)
    return tuple(pushed), tuple(residual)


def source_predicate(query: Query, plan: SourcePlan):
    """A store-level filter for the pushable subset of a query's WHERE.

    Returns ``(predicate, residual)``: ``predicate`` is a callable over
    instances (or None when nothing pushes), ``residual`` the conditions
    that must still run post-conversion.  Thin shim over
    :func:`split_conditions` for callers that want an opaque filter.
    """
    pushed, residual = split_conditions(query, plan)
    if not pushed:
        return None, residual

    def predicate(instance) -> bool:
        return all(
            c.evaluate(instance.get(c.attribute)) for c in pushed
        )

    return predicate, residual
