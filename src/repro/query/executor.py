"""The streaming executor: physical plans -> iterator pipelines.

Where the old engine fetched *full lists* from every wrapper, converted
them, filtered them and only then merged, this executor evaluates a
:class:`~repro.query.planner.PhysicalPlan` lazily: each source is a
generator chain (scan -> convert -> residual filter -> row), sources
are concatenated, and the finalize step decides how much ever needs to
be held in memory at once:

* **aggregates** fold the stream into constant-size accumulators — a
  ``COUNT(*)`` over a million instances materializes one row;
* **ordered scans** (both built-in backends yield in ascending
  ``instance_id`` order) concatenate into an already-sorted answer, so
  ``LIMIT`` queries stop pulling from the backends early;
* only an explicit ``ORDER BY`` — or an unordered wrapper — forces the
  classic materialize-and-sort barrier.

:class:`ExecutionStats` records ``peak_rows`` — the most rows ever
materialized at one time — which is how the benchmarks prove streaming
execution beats the eager path on memory, not just wall-clock.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.query.ast import Aggregate, Query
from repro.query.planner import PhysicalPlan, SourcePipeline

__all__ = [
    "AGGREGATE_ROW_ID",
    "ExecutionStats",
    "ResultRow",
    "StreamingExecutor",
    "finalize_rows",
    "project_rows",
]

AGGREGATE_ROW_ID = "<aggregate>"


@dataclass(frozen=True)
class ResultRow:
    """One answer: provenance plus the (converted) attribute values."""

    instance_id: str
    source: str
    cls: str
    values: Mapping[str, object]

    def get(self, attribute: str, default: object | None = None) -> object:
        return self.values.get(attribute.lower(), default)


@dataclass
class ExecutionStats:
    """Instrumentation for one plan execution."""

    rows_scanned: int = 0
    rows_out: int = 0
    peak_rows: int = 0  # most rows materialized simultaneously
    streamed: bool = True  # False when a sort barrier was required
    per_source: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# shared finalization helpers (the executor and the view layer must
# produce identical result shapes)
# ----------------------------------------------------------------------
def finalize_rows(query: Query, rows: list[ResultRow]) -> list[ResultRow]:
    """Apply ORDER BY / LIMIT / aggregation to merged result rows.

    Aggregation collapses the rows into a single synthetic row (id
    ``<aggregate>``, source ``*``).
    """
    if query.aggregates:
        values = {
            agg.label(): agg.compute(
                [row.get(agg.attribute) for row in rows]
                if agg.attribute != "*"
                else [True] * len(rows)
            )
            for agg in query.aggregates
        }
        return [
            ResultRow(AGGREGATE_ROW_ID, "*", query.target.term, values)
        ]
    if query.order_by:
        # Stable multi-key sort: apply keys in reverse significance;
        # rows missing the attribute always sort last.
        for attribute, descending in reversed(query.order_by):
            present = [r for r in rows if r.get(attribute) is not None]
            absent = [r for r in rows if r.get(attribute) is None]
            try:
                present.sort(
                    key=lambda r: r.get(attribute),  # type: ignore[arg-type]
                    reverse=descending,
                )
            except TypeError:  # mixed value types: compare as strings
                present.sort(
                    key=lambda r: str(r.get(attribute)), reverse=descending
                )
            rows = present + absent
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def project_rows(query: Query, rows: list[ResultRow]) -> list[ResultRow]:
    """Narrow finalized rows to the SELECTed attributes (projection
    runs last: ORDER BY may have used non-selected values)."""
    if query.aggregates or not query.select:
        return rows
    return [
        ResultRow(
            row.instance_id,
            row.source,
            row.cls,
            {attr: row.get(attr) for attr in query.select},
        )
        for row in rows
    ]


# ----------------------------------------------------------------------
# streaming aggregation
# ----------------------------------------------------------------------
class _AggregateState:
    """Constant-size accumulator matching ``Aggregate.compute``."""

    __slots__ = ("aggregate", "rows", "non_null", "numeric", "sum",
                 "min", "max")

    def __init__(self, aggregate: Aggregate) -> None:
        self.aggregate = aggregate
        self.rows = 0
        self.non_null = 0
        self.numeric = 0
        self.sum: object = 0
        self.min: object = None
        self.max: object = None

    def feed(self, row: ResultRow) -> None:
        self.rows += 1
        if self.aggregate.attribute == "*":
            return
        value = row.get(self.aggregate.attribute)
        if value is None:
            return
        self.non_null += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.numeric += 1
            self.sum += value  # type: ignore[operator]
            if self.min is None or value < self.min:  # type: ignore[operator]
                self.min = value
            if self.max is None or value > self.max:  # type: ignore[operator]
                self.max = value

    def result(self) -> object:
        fn = self.aggregate.fn
        if fn == "count":
            return (
                self.rows
                if self.aggregate.attribute == "*"
                else self.non_null
            )
        if not self.numeric:
            return None
        if fn == "sum":
            return self.sum
        if fn == "min":
            return self.min
        if fn == "max":
            return self.max
        return self.sum / self.numeric  # type: ignore[operator]  # avg


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class StreamingExecutor:
    """Evaluates physical plans as generator pipelines over wrappers."""

    def __init__(self, wrappers: Mapping[str, "SourceWrapper"]) -> None:
        self.wrappers = wrappers

    # -- per-source pipeline --------------------------------------------
    def _source_rows(
        self,
        pipeline: SourcePipeline,
        query: Query,
        stats: ExecutionStats,
    ) -> Iterator[ResultRow]:
        """scan -> convert -> residual filter -> project, one row at a
        time.  Mirrors the eager engine's semantics exactly, including
        first-surviving-row-wins deduplication per (source, id)."""
        wrapper = self.wrappers[pipeline.source]
        scan = pipeline.scan
        logical = pipeline.logical
        residual = pipeline.filter.residual
        needed = query.attributes_needed()
        projection = (
            None
            if scan.projection is None
            else frozenset(scan.projection)
        )
        seen: set[str] = set()
        for instance in wrapper.scan(
            scan.classes,
            include_subclasses=scan.include_subclasses,
            conditions=scan.pushed,
            attrs=projection,
        ):
            stats.rows_scanned += 1
            stats.per_source[pipeline.source] = (
                stats.per_source.get(pipeline.source, 0) + 1
            )
            if instance.instance_id in seen:
                continue
            attributes = needed if needed else set(instance.attributes)
            converted = {
                attr: logical.convert(attr, instance.get(attr))
                for attr in attributes
            }
            if not all(
                condition.evaluate(converted.get(condition.attribute))
                for condition in residual
            ):
                continue
            if query.select:
                # Carry every needed attribute (select + where + order
                # by); projection narrows after finalize.
                values = dict(converted)
            else:
                # SELECT * / aggregates: every stored attribute,
                # converted where applicable.
                values = dict(instance.attributes)
                values.update(converted)
            seen.add(instance.instance_id)
            yield ResultRow(
                instance.instance_id,
                pipeline.source,
                instance.cls,
                values,
            )

    def _merged(
        self, plan: PhysicalPlan, stats: ExecutionStats
    ) -> Iterator[ResultRow]:
        for pipeline in plan.pipelines:
            yield from self._source_rows(pipeline, plan.query, stats)

    # -- entry point ----------------------------------------------------
    def run(
        self, plan: PhysicalPlan, stats: ExecutionStats | None = None
    ) -> list[ResultRow]:
        stats = stats if stats is not None else ExecutionStats()
        query = plan.query
        stream = self._merged(plan, stats)

        if query.aggregates:
            states = [_AggregateState(agg) for agg in query.aggregates]
            for row in stream:
                for state in states:
                    state.feed(row)
            rows = [
                ResultRow(
                    AGGREGATE_ROW_ID,
                    "*",
                    query.target.term,
                    {
                        state.aggregate.label(): state.result()
                        for state in states
                    },
                )
            ]
            stats.peak_rows = max(stats.peak_rows, 1)
            stats.rows_out = 1
            return rows

        ordered = all(
            getattr(self.wrappers[p.source], "ordered", False)
            for p in plan.pipelines
        )
        if ordered and not query.order_by:
            # Pipelines are sorted by source name and each yields in
            # ascending instance_id order, so the concatenation is
            # already the final order: stream straight into the result,
            # stopping as soon as LIMIT is satisfied.
            rows = []
            for row in stream:
                rows.append(row)
                if query.limit is not None and len(rows) >= query.limit:
                    break
            rows = rows[: query.limit] if query.limit is not None else rows
        else:
            stats.streamed = False
            rows = list(stream)
            stats.peak_rows = max(stats.peak_rows, len(rows))
            rows.sort(key=lambda r: (r.source, r.instance_id))
            rows = finalize_rows(query, rows)
        rows = project_rows(query, rows)
        stats.peak_rows = max(stats.peak_rows, len(rows))
        stats.rows_out = len(rows)
        return rows
