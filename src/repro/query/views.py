"""Answering queries using views (paper §1 and reference [16]).

The paper contrasts ONION's articulations with the view-based mediation
of Infomaster / Information Manifold, and cites Mitra's own
"Algorithms for answering queries efficiently using views".  This
module implements the ingredient the query system needs: materialized
views over the unified sources, a containment test, and a rewriter
that answers a query from a view when one applies (falling back to the
live plan otherwise).

The containment test is the classic conjunctive-predicate one,
restricted to our AST: a view answers a query when

* the view's target class subsumes the query's target class (equal, or
  the query's class is a specialization of the view's in the unified
  graph);
* every view predicate is implied by some query predicate (so the
  view's rows are a superset of the query's answer set);
* the view stores every attribute the query needs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.ontology import qualify
from repro.core.unified import UnifiedOntology
from repro.errors import QueryError
from repro.query.ast import Condition, Query
from repro.query.engine import QueryEngine, ResultRow

__all__ = ["MaterializedView", "ViewCatalog"]


def _condition_implies(stronger: Condition, weaker: Condition) -> bool:
    """Does satisfying ``stronger`` guarantee satisfying ``weaker``?

    Handles same-attribute numeric ranges and equality; anything else
    is answered conservatively (False).
    """
    if stronger.attribute != weaker.attribute:
        return False
    if stronger.op == weaker.op and stronger.value == weaker.value:
        return True
    try:
        s_val = float(stronger.value)  # type: ignore[arg-type]
        w_val = float(weaker.value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        if stronger.op == "=" and weaker.op == "=":
            return stronger.value == weaker.value
        return False
    if stronger.op == "=":
        return weaker.evaluate(s_val)
    if stronger.op in ("<", "<="):
        if weaker.op == "<":
            return s_val <= w_val if stronger.op == "<" else s_val < w_val
        if weaker.op == "<=":
            return s_val <= w_val
    if stronger.op in (">", ">="):
        if weaker.op == ">":
            return s_val >= w_val if stronger.op == ">" else s_val > w_val
        if weaker.op == ">=":
            return s_val >= w_val
    return False


@dataclass
class MaterializedView:
    """A named, materialized query result.

    ``rows`` hold full attribute maps (the view is defined with
    ``SELECT *`` semantics internally so residual predicates can be
    evaluated); ``stale`` flips when a source changes and the catalog
    owner must refresh — the maintenance cost the paper's critique of
    view-based integration is about.
    """

    name: str
    query: Query
    rows: list[ResultRow] = field(default_factory=list)
    stale: bool = True
    refresh_count: int = 0

    def refresh(self, engine: QueryEngine) -> int:
        """Re-materialize from the live sources; returns the row count."""
        materialization = Query(
            self.query.target,
            (),  # store all attributes
            self.query.where,
            self.query.include_subclasses,
        )
        self.rows = engine.execute(materialization)
        self.stale = False
        self.refresh_count += 1
        return len(self.rows)

    def can_answer(self, query: Query, unified: UnifiedOntology) -> bool:
        """The containment test described in the module docstring."""
        if self.stale:
            return False
        view_target = qualify(
            self.query.target.ontology or "", self.query.target.term
        )
        query_target = qualify(
            query.target.ontology or "", query.target.term
        )
        if view_target != query_target:
            if not unified.has_term(query_target) or not unified.has_term(
                view_target
            ):
                return False
            if not unified.implies(query_target, view_target):
                return False
        for view_condition in self.query.where:
            if not any(
                _condition_implies(query_condition, view_condition)
                for query_condition in query.where
            ):
                return False
        return True

    def answer(self, query: Query) -> list[ResultRow]:
        """Evaluate the query's residual predicates over the view rows,
        then apply ordering, limits, aggregation and projection exactly
        as the live executor would (the finalize/project helpers are
        shared with :mod:`repro.query.executor`)."""
        from repro.query.executor import finalize_rows, project_rows

        kept = [
            ResultRow(row.instance_id, row.source, row.cls,
                      dict(row.values))
            for row in self.rows
            if all(
                condition.evaluate(row.get(condition.attribute))
                for condition in query.where
            )
        ]
        return project_rows(query, finalize_rows(query, kept))


class ViewCatalog:
    """Registered views plus the rewrite-or-fallback entry point."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self.views: dict[str, MaterializedView] = {}
        self.hits = 0
        self.misses = 0

    def define(self, name: str, query: Query | str) -> MaterializedView:
        from repro.query.parser import parse_query

        if name in self.views:
            raise QueryError(f"view {name!r} already defined")
        if isinstance(query, str):
            query = parse_query(query)
        view = MaterializedView(name, query)
        view.refresh(self.engine)
        self.views[name] = view
        return view

    def invalidate(self, *names: str) -> None:
        """Mark views stale (all of them when no names are given)."""
        targets = names or tuple(self.views)
        for name in targets:
            if name not in self.views:
                raise QueryError(f"no view named {name!r}")
            self.views[name].stale = True

    def refresh_stale(self) -> int:
        """Refresh every stale view; returns how many were refreshed."""
        refreshed = 0
        for view in self.views.values():
            if view.stale:
                view.refresh(self.engine)
                refreshed += 1
        return refreshed

    def execute(self, query: Query | str) -> list[ResultRow]:
        """Answer from a view when possible, else from the live plan."""
        from repro.query.parser import parse_query

        if isinstance(query, str):
            query = parse_query(query)
        for view in self.views.values():
            if view.can_answer(query, self.engine.unified):
                self.hits += 1
                return view.answer(query)
        self.misses += 1
        return self.engine.execute(query)
