"""Query reformulation across the articulation (paper §2.3, §2.6).

"Interoperation of ontologies forms the basis for querying their
semantically meaningful intersection ... a traditional query engine
takes a query phrased in terms of an articulation ontology and derives
an execution plan against the sources involved.  Given the semantic
bridges, however, query reformulation is often required."

Two jobs happen here:

1. **Class fan-out** — find, for every source, the local class terms
   whose concepts imply the query's target class (following SubclassOf,
   SemanticImplication and bridge edges through the unified graph).
2. **Value normalization** — find, per attribute, a chain of functional
   bridges converting the source's metric into the target ontology's
   (Pound Sterling -> Euro, or Dutch Guilders -> Euro -> Pound Sterling
   when the query targets the carrier), and compose the conversion
   functions along it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.articulation import Articulation
from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.core.relations import ATTRIBUTE_OF
from repro.core.rules import FunctionalRule
from repro.core.unified import UnifiedOntology
from repro.errors import PlanningError, QueryError
from repro.query.ast import Query

__all__ = ["Conversion", "SourcePlan", "reformulate"]


@dataclass(frozen=True)
class Conversion:
    """A composed chain of functional bridges for one attribute.

    ``chain`` converts left to right: value in the source's metric in,
    value in the target ontology's metric out.
    """

    attribute: str
    unit_from: str  # qualified unit term at the source
    unit_to: str  # qualified unit term at the target
    chain: tuple[FunctionalRule, ...]

    def apply(self, value: object) -> object:
        """Convert numeric values; leave everything else untouched."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return value
        result = float(value)
        for rule in self.chain:
            result = rule.apply(result)
        return result

    @property
    def invertible(self) -> bool:
        return all(rule.inverse is not None for rule in self.chain)

    def apply_inverse(self, value: float) -> float:
        """Map a target-metric value back into the source's metric."""
        result = float(value)
        for rule in reversed(self.chain):
            result = rule.apply_inverse(result)
        return result

    def is_increasing(self) -> bool:
        """Probe the composed function's direction (conversions are
        monotone bijections — unit changes — so two samples suffice)."""
        return self.apply(2.0) > self.apply(1.0)  # type: ignore[operator]

    def describe(self) -> str:
        names = " . ".join(rule.name for rule in self.chain)
        return f"{self.attribute}: {self.unit_from} -[{names}]-> {self.unit_to}"


@dataclass(frozen=True)
class SourcePlan:
    """The reformulated query for one source.

    ``classes`` are local class terms to scan (each expanded down the
    source's own SubclassOf hierarchy when the query asks for subclass
    closure); ``conversions`` normalize attribute values *before*
    predicates run, so WHERE clauses are evaluated in the target
    ontology's metric.
    """

    source: str
    classes: tuple[str, ...]
    conversions: Mapping[str, Conversion] = field(default_factory=dict)

    def convert(self, attribute: str, value: object) -> object:
        conversion = self.conversions.get(attribute.lower())
        return conversion.apply(value) if conversion else value


def _ontology_for(
    unified: UnifiedOntology, name: str
) -> Ontology:
    if name == unified.articulation.name:
        return unified.articulation.ontology
    source = unified.sources.get(name)
    if source is None:
        raise PlanningError(f"query references unknown ontology {name!r}")
    return source


def _class_fanout(
    unified: UnifiedOntology, target_qualified: str
) -> dict[str, set[str]]:
    """source name -> local class terms implying the target concept."""
    implied = unified.specializations(target_qualified) | {target_qualified}
    fanout: dict[str, set[str]] = {}
    for qualified in implied:
        onto_name, term = split_qualified(qualified)
        if onto_name is None or onto_name == unified.articulation.name:
            continue
        if onto_name in unified.sources:
            fanout.setdefault(onto_name, set()).add(term)
    return fanout


def _prune_redundant(ontology: Ontology, terms: set[str]) -> tuple[str, ...]:
    """Drop terms that are descendants of other selected terms.

    With subclass closure enabled at the store, scanning an ancestor
    already covers its descendants; keeping both only costs work.
    """
    keep = []
    for term in sorted(terms):
        ancestors = ontology.ancestors(term)
        if not (ancestors & terms):
            keep.append(term)
    return tuple(keep)


def _attribute_units(ontology: Ontology, attribute: str) -> list[str]:
    """Unit terms attached (via AttributeOf) to an attribute term.

    The modeling convention from Fig. 2: ``PoundSterling -A-> Price``
    declares the metric that ``Price`` values are quoted in.
    """
    code = ATTRIBUTE_OF.code
    units: list[str] = []
    for term in ontology.terms():
        if term.lower() != attribute.lower():
            continue
        units.extend(sorted(ontology.graph.predecessors(term, code)))
    return units


def _functional_graph(articulation: Articulation) -> LabeledGraph:
    """The subgraph of functional (conversion) bridges only."""
    graph = LabeledGraph()
    for edge in articulation.bridges:
        if edge.label not in articulation.functions:
            continue
        for endpoint in (edge.source, edge.target):
            if not graph.has_node(endpoint):
                graph.add_node(endpoint, split_qualified(endpoint)[1])
        graph.add_edge(edge.source, edge.label, edge.target)
    return graph


def _conversion_path(
    articulation: Articulation,
    start: str,
    accept_namespace: str,
) -> tuple[str, tuple[FunctionalRule, ...]] | None:
    """BFS over functional bridges from ``start`` into a namespace.

    Returns ``(destination unit, rule chain)`` for the shortest chain,
    or None.  This is what turns Dutch Guilders into Pound Sterling by
    composing DGToEuroFn with EuroToPSFn when a query targets the
    carrier's metric.
    """
    graph = _functional_graph(articulation)
    if not graph.has_node(start):
        return None
    prefix = f"{accept_namespace}:"
    parents: dict[str, tuple[str, FunctionalRule]] = {}
    frontier: deque[str] = deque([start])
    seen = {start}
    while frontier:
        node = frontier.popleft()
        if node.startswith(prefix) and node != start:
            chain: list[FunctionalRule] = []
            cursor = node
            while cursor != start:
                parent, rule = parents[cursor]
                chain.append(rule)
                cursor = parent
            chain.reverse()
            return node, tuple(chain)
        for edge in graph.out_edges(node):
            if edge.target in seen:
                continue
            seen.add(edge.target)
            parents[edge.target] = (node, articulation.functions[edge.label])
            frontier.append(edge.target)
    return None


def _unit_bearing_attributes(ontology: Ontology) -> set[str]:
    """Attribute terms that have a unit attached (a ``unit -A-> attr``
    edge where the unit itself has an outgoing functional candidate)."""
    code = ATTRIBUTE_OF.code
    bearing: set[str] = set()
    for term in ontology.terms():
        if ontology.graph.predecessors(term, code):
            bearing.add(term)
    return bearing


def _conversions_for_source(
    unified: UnifiedOntology,
    source: Ontology,
    target_ontology: str,
    attributes: set[str],
) -> dict[str, Conversion]:
    """Per-attribute conversion chains from one source's metrics.

    An empty ``attributes`` set means the query projects everything
    (``SELECT *``): every unit-bearing attribute of the source gets a
    conversion so no value leaks out in the wrong metric.
    """
    if source.name == target_ontology:
        return {}
    if not attributes:
        attributes = {a.lower() for a in _unit_bearing_attributes(source)}
    articulation = unified.articulation
    conversions: dict[str, Conversion] = {}
    for attribute in attributes:
        for unit in _attribute_units(source, attribute):
            start = qualify(source.name, unit)
            found = _conversion_path(articulation, start, target_ontology)
            if found is None:
                continue
            destination, chain = found
            conversions[attribute.lower()] = Conversion(
                attribute.lower(), start, destination, chain
            )
            break
    return conversions


def reformulate(
    query: Query, unified: UnifiedOntology | Articulation
) -> list[SourcePlan]:
    """Reformulate a query into per-source plans.

    Raises :class:`PlanningError` when the target ontology is unknown
    or no source can contribute.
    """
    if isinstance(unified, Articulation):
        unified = UnifiedOntology(unified)
    target_ontology = query.target.ontology
    assert target_ontology is not None  # Query.__post_init__ guarantees it
    owner = _ontology_for(unified, target_ontology)
    if not owner.has_term(query.target.term):
        raise QueryError(
            f"target class {query.target.term!r} does not exist in "
            f"ontology {target_ontology!r}"
        )

    target_qualified = qualify(target_ontology, query.target.term)
    fanout = _class_fanout(unified, target_qualified)
    attributes = query.attributes_needed()

    plans: list[SourcePlan] = []
    for source_name in sorted(fanout):
        source = unified.sources[source_name]
        classes = _prune_redundant(source, fanout[source_name])
        if not classes:
            continue
        conversions = _conversions_for_source(
            unified, source, target_ontology, attributes
        )
        plans.append(SourcePlan(source_name, classes, conversions))

    if not plans:
        raise PlanningError(
            f"no source ontology is bridged into {target_qualified!r}; "
            "the query has no executable plan"
        )
    return plans
