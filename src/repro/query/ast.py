"""Query AST (paper §2.3).

A query is phrased in terms of one ontology — usually an articulation
ontology — and asks for instances of a class, projecting attributes
and filtering on attribute predicates::

    SELECT price, model FROM transport:Vehicle WHERE price < 10000

The query system reformulates this against every source bridged into
``transport:Vehicle``, converting attribute values through functional
rules (Pound Sterling / Dutch Guilders into Euro) before predicates
are evaluated — the paper's normalization-function story.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.rules import TermRef
from repro.errors import QueryError

__all__ = ["Aggregate", "Condition", "Query", "OPERATORS", "AGGREGATE_FNS"]

OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _avg(values: list[float]) -> float:
    return sum(values) / len(values)


AGGREGATE_FNS: dict[str, Callable[[list], object]] = {
    "count": len,
    "min": min,
    "max": max,
    "sum": sum,
    "avg": _avg,
}


@dataclass(frozen=True, slots=True)
class Aggregate:
    """``FN(attribute)`` in a projection; ``count`` accepts ``*``.

    Aggregation runs *after* reformulation and value conversion, so a
    ``MIN(price)`` over ``transport:Vehicle`` compares Euro against
    Euro even though the sources store Pound Sterling and Guilders.
    """

    fn: str
    attribute: str  # "*" only for count

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATE_FNS:
            raise QueryError(f"unsupported aggregate {self.fn!r}")
        object.__setattr__(self, "attribute", self.attribute.lower()
                           if self.attribute != "*" else "*")
        if self.attribute == "*" and self.fn != "count":
            raise QueryError(f"{self.fn}(*) is not defined; only count(*)")

    def label(self) -> str:
        return f"{self.fn}({self.attribute})"

    def compute(self, values: list[object]) -> object:
        """Apply over non-null values; empty input yields 0 for count,
        None otherwise."""
        if self.fn == "count":
            if self.attribute == "*":
                return len(values)
            return sum(1 for v in values if v is not None)
        numeric = [
            v for v in values
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if not numeric:
            return None
        return AGGREGATE_FNS[self.fn](numeric)

    def __str__(self) -> str:
        return f"{self.fn.upper()}({self.attribute})"


@dataclass(frozen=True, slots=True)
class Condition:
    """One predicate ``attribute op value``; attribute names are
    case-insensitive (stored lowercase)."""

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise QueryError(f"unsupported operator {self.op!r}")
        object.__setattr__(self, "attribute", self.attribute.lower())

    def evaluate(self, value: object) -> bool:
        """Apply the predicate; missing (None) values never satisfy it."""
        if value is None:
            return False
        try:
            return OPERATORS[self.op](value, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """``SELECT ... FROM target [WHERE ...] [ORDER BY ...] [LIMIT n]``.

    ``target`` is a qualified class reference; an empty ``select``
    with no ``aggregates`` means "all attributes".
    ``include_subclasses`` extends each source-side class query down
    its local SubclassOf hierarchy.  ``order_by`` entries are
    ``(attribute, descending)``; ordering happens after value
    conversion, so cross-source results sort in one metric.
    """

    target: TermRef
    select: tuple[str, ...] = ()
    where: tuple[Condition, ...] = ()
    include_subclasses: bool = True
    aggregates: tuple[Aggregate, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.target.ontology is None:
            raise QueryError(
                f"query target {self.target.term!r} must be qualified "
                "(ontology:Term)"
            )
        if self.select and self.aggregates:
            raise QueryError(
                "a query projects either attributes or aggregates, not both"
            )
        if self.limit is not None and self.limit < 0:
            raise QueryError("LIMIT must be non-negative")
        object.__setattr__(
            self, "select", tuple(attr.lower() for attr in self.select)
        )
        object.__setattr__(
            self,
            "order_by",
            tuple((attr.lower(), desc) for attr, desc in self.order_by),
        )

    @classmethod
    def over(
        cls,
        target: str,
        *,
        select: Iterable[str] = (),
        where: Iterable[Condition] = (),
        include_subclasses: bool = True,
        aggregates: Iterable[Aggregate] = (),
        order_by: Iterable[tuple[str, bool]] = (),
        limit: int | None = None,
    ) -> "Query":
        """Convenience constructor from a qualified target string."""
        return cls(
            TermRef.parse(target),
            tuple(select),
            tuple(where),
            include_subclasses,
            tuple(aggregates),
            tuple(order_by),
            limit,
        )

    def attributes_needed(self) -> set[str]:
        """Every attribute the executor must fetch."""
        needed = set(self.select) | {c.attribute for c in self.where}
        needed |= {attr for attr, _ in self.order_by}
        needed |= {
            agg.attribute for agg in self.aggregates if agg.attribute != "*"
        }
        return needed

    def __str__(self) -> str:
        if self.aggregates:
            projection = ", ".join(str(a) for a in self.aggregates)
        else:
            projection = ", ".join(self.select) if self.select else "*"
        text = f"SELECT {projection} FROM {self.target}"
        if self.where:
            text += " WHERE " + " AND ".join(str(c) for c in self.where)
        if self.order_by:
            parts = [
                f"{attr} DESC" if desc else attr
                for attr, desc in self.order_by
            ]
            text += " ORDER BY " + ", ".join(parts)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text
