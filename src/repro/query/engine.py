"""The query engine: planning and execution (paper §2.3, Fig. 1).

:class:`QueryEngine` glues the pieces together: it reformulates a query
over the articulation into per-source plans, fetches instances from
each source's wrapper, applies value conversions, evaluates predicates
in the target ontology's metric, projects the selected attributes and
merges the per-source answers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.articulation import Articulation
from repro.core.unified import UnifiedOntology
from repro.errors import PlanningError
from repro.kb.instances import Instance, InstanceStore
from repro.query.ast import Query
from repro.query.parser import parse_query

AGGREGATE_ROW_ID = "<aggregate>"


def finalize_rows(query: Query, rows: list["ResultRow"]) -> list["ResultRow"]:
    """Apply ORDER BY / LIMIT / aggregation to merged result rows.

    Shared by the live executor and the view layer so both produce
    identical result shapes.  Aggregation collapses the rows into a
    single synthetic row (id ``<aggregate>``, source ``*``).
    """
    if query.aggregates:
        values = {
            agg.label(): agg.compute(
                [row.get(agg.attribute) for row in rows]
                if agg.attribute != "*"
                else [True] * len(rows)
            )
            for agg in query.aggregates
        }
        return [
            ResultRow(AGGREGATE_ROW_ID, "*", query.target.term, values)
        ]
    if query.order_by:
        # Stable multi-key sort: apply keys in reverse significance;
        # rows missing the attribute always sort last.
        for attribute, descending in reversed(query.order_by):
            present = [r for r in rows if r.get(attribute) is not None]
            absent = [r for r in rows if r.get(attribute) is None]
            try:
                present.sort(
                    key=lambda r: r.get(attribute),  # type: ignore[arg-type]
                    reverse=descending,
                )
            except TypeError:  # mixed value types: compare as strings
                present.sort(
                    key=lambda r: str(r.get(attribute)), reverse=descending
                )
            rows = present + absent
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
from repro.query.reformulate import SourcePlan, reformulate
from repro.query.wrappers import SourceWrapper, as_wrapper

__all__ = ["ExecutionPlan", "ResultRow", "QueryEngine"]


@dataclass(frozen=True)
class ResultRow:
    """One answer: provenance plus the (converted) attribute values."""

    instance_id: str
    source: str
    cls: str
    values: Mapping[str, object]

    def get(self, attribute: str, default: object | None = None) -> object:
        return self.values.get(attribute.lower(), default)


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully reformulated query, ready to run."""

    query: Query
    source_plans: tuple[SourcePlan, ...]

    def describe(self) -> str:
        """A human-readable plan, the way the viewer would show it."""
        lines = [f"plan for: {self.query}"]
        for plan in self.source_plans:
            lines.append(
                f"  scan {plan.source}: classes={list(plan.classes)}"
            )
            for conversion in plan.conversions.values():
                lines.append(f"    convert {conversion.describe()}")
        return "\n".join(lines)


class QueryEngine:
    """Plans and executes queries against wrapped sources.

    ``pushdown=True`` translates range predicates into each source's
    metric through the inverse conversion functions and evaluates them
    at the store, before any value conversion (see
    :mod:`repro.query.pushdown`).
    """

    def __init__(
        self,
        articulation: Articulation,
        stores: Mapping[str, InstanceStore | SourceWrapper],
        *,
        pushdown: bool = False,
    ) -> None:
        self.unified = UnifiedOntology(articulation)
        self.pushdown = pushdown
        self.wrappers: dict[str, SourceWrapper] = {
            name: as_wrapper(store) for name, store in stores.items()
        }

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, query: Query | str) -> ExecutionPlan:
        if isinstance(query, str):
            query = parse_query(query)
        source_plans = reformulate(query, self.unified)
        executable = [
            plan for plan in source_plans if plan.source in self.wrappers
        ]
        if not executable:
            raise PlanningError(
                "no knowledge base is registered for any of the sources "
                f"{[p.source for p in source_plans]}"
            )
        return ExecutionPlan(query, tuple(executable))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | str) -> list[ResultRow]:
        plan = self.plan(query)
        return self.run(plan)

    def run(self, plan: ExecutionPlan) -> list[ResultRow]:
        from repro.query.pushdown import source_predicate

        query = plan.query
        needed = query.attributes_needed()
        rows: dict[tuple[str, str], ResultRow] = {}
        for source_plan in plan.source_plans:
            wrapper = self.wrappers[source_plan.source]
            if self.pushdown:
                predicate, residual = source_predicate(query, source_plan)
            else:
                predicate, residual = None, query.where
            instances = wrapper.fetch(
                source_plan.classes,
                include_subclasses=query.include_subclasses,
                predicate=predicate,
            )
            for instance in instances:
                converted = self._convert_values(
                    instance, source_plan, needed
                )
                if not all(
                    condition.evaluate(converted.get(condition.attribute))
                    for condition in residual
                ):
                    continue
                projected = self._project(instance, converted, query)
                key = (source_plan.source, instance.instance_id)
                rows.setdefault(
                    key,
                    ResultRow(
                        instance.instance_id,
                        source_plan.source,
                        instance.cls,
                        projected,
                    ),
                )
        merged = sorted(
            rows.values(), key=lambda r: (r.source, r.instance_id)
        )
        finalized = finalize_rows(query, merged)
        if query.aggregates or not query.select:
            return finalized
        # Projection last: ORDER BY may have used non-selected values.
        return [
            ResultRow(
                row.instance_id,
                row.source,
                row.cls,
                {attr: row.get(attr) for attr in query.select},
            )
            for row in finalized
        ]

    @staticmethod
    def _convert_values(
        instance: Instance, plan: SourcePlan, needed: set[str]
    ) -> dict[str, object]:
        attributes = needed if needed else set(instance.attributes)
        return {
            attr: plan.convert(attr, instance.get(attr))
            for attr in attributes
        }

    @staticmethod
    def _project(
        instance: Instance,
        converted: Mapping[str, object],
        query: Query,
    ) -> dict[str, object]:
        if query.select:
            # Carry every needed attribute (select + where + order by +
            # aggregate inputs); run() projects down after finalizing.
            return dict(converted)
        # SELECT * / aggregates: every stored attribute, converted
        # where applicable.
        values = dict(instance.attributes)
        values.update(converted)
        return values
