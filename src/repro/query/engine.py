"""The query engine facade: planning and execution (paper §2.3, Fig. 1).

:class:`QueryEngine` is now a thin coordinator over three layers:

* the **planner** (:mod:`repro.query.planner`) reformulates a query
  over the articulation into an explicit, cached
  :class:`~repro.query.planner.PhysicalPlan`;
* the **executor** (:mod:`repro.query.executor`) evaluates plans as
  streaming iterator pipelines;
* **storage backends** (:mod:`repro.kb.backends`) behind the source
  wrappers answer the scans, with predicates and projections pushed
  down as far as each backend can take them.

The historical entry points — ``plan`` / ``run`` / ``execute``,
``ResultRow``, ``finalize_rows`` and the ``ExecutionPlan`` name — are
kept as thin shims over the new layers.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.articulation import Articulation
from repro.core.unified import UnifiedOntology
from repro.kb.instances import InstanceStore
from repro.query.ast import Query
from repro.query.executor import (
    AGGREGATE_ROW_ID,
    ExecutionStats,
    ResultRow,
    StreamingExecutor,
    finalize_rows,
    project_rows,
)
from repro.query.parser import parse_query
from repro.query.planner import PhysicalPlan, PlanCacheInfo, Planner
from repro.query.wrappers import SourceWrapper, as_wrapper

__all__ = [
    "AGGREGATE_ROW_ID",
    "ExecutionPlan",
    "ExecutionStats",
    "QueryEngine",
    "ResultRow",
    "finalize_rows",
    "project_rows",
]

#: Compatibility alias — plans are physical operator trees now.
ExecutionPlan = PhysicalPlan


class QueryEngine:
    """Plans and executes queries against wrapped sources.

    ``pushdown=True`` translates range predicates into each source's
    metric through the inverse conversion functions and attaches them
    to the scan operators, so backends evaluate them at the store —
    in SQL, for the SQLite backend — before any value conversion (see
    :mod:`repro.query.pushdown`).
    """

    def __init__(
        self,
        articulation: Articulation,
        stores: Mapping[str, InstanceStore | SourceWrapper],
        *,
        pushdown: bool = False,
        plan_cache_size: int = 128,
    ) -> None:
        self.unified = UnifiedOntology(articulation)
        self.pushdown = pushdown
        self.wrappers: dict[str, SourceWrapper] = {
            name: as_wrapper(store) for name, store in stores.items()
        }
        self.planner = Planner(
            self.unified, pushdown=pushdown, cache_size=plan_cache_size
        )
        self.executor = StreamingExecutor(self.wrappers)
        #: stats of the most recent :meth:`run` (peak rows, scan counts)
        self.last_stats: ExecutionStats | None = None

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, query: Query | str) -> PhysicalPlan:
        if isinstance(query, str):
            query = parse_query(query)
        return self.planner.plan(
            query, available=frozenset(self.wrappers)
        )

    def plan_cache_info(self) -> PlanCacheInfo:
        return self.planner.cache_info()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | str) -> list[ResultRow]:
        return self.run(self.plan(query))

    def run(self, plan: PhysicalPlan) -> list[ResultRow]:
        stats = ExecutionStats()
        rows = self.executor.run(plan, stats)
        self.last_stats = stats
        return rows
