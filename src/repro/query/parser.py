"""Textual query parser.

Grammar (case-insensitive keywords, whitespace-tolerant)::

    query      := SELECT projection FROM target [WHERE conditions]
                  [ORDER BY ordering] [LIMIT n]
    projection := '*' | attr (',' attr)* | aggregate (',' aggregate)*
    aggregate  := (COUNT|MIN|MAX|SUM|AVG) '(' (attr|'*') ')'
    target     := NAME ':' NAME            # qualified class
    conditions := condition (AND condition)*
    condition  := attr OP literal
    OP         := = | == | != | < | <= | > | >=
    ordering   := attr [ASC|DESC] (',' attr [ASC|DESC])*
    literal    := number | 'single-quoted string' | "double-quoted" | word

Examples::

    SELECT * FROM transport:Vehicle
    SELECT price, model FROM transport:Vehicle WHERE price < 10000
    SELECT owner FROM carrier:Trucks WHERE model = 'T800' AND price >= 5
    SELECT price FROM transport:Vehicle ORDER BY price DESC LIMIT 3
    SELECT COUNT(*), AVG(price) FROM transport:Vehicle
"""

from __future__ import annotations

import re

from repro.core.rules import TermRef
from repro.errors import QueryError, QueryParseError
from repro.query.ast import AGGREGATE_FNS, OPERATORS, Aggregate, Condition, Query

__all__ = ["parse_query"]

_QUERY = re.compile(
    r"^\s*SELECT\s+(?P<projection>.+?)\s+FROM\s+(?P<target>[^\s;]+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>.+?))?"
    r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_AGGREGATE = re.compile(
    r"^(?P<fn>[A-Za-z]+)\s*\(\s*(?P<attr>\*|[A-Za-z_][A-Za-z0-9_]*)\s*\)$"
)
_CONDITION = re.compile(
    r"^\s*(?P<attr>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?P<op>==|!=|<=|>=|=|<|>)\s*(?P<value>.+?)\s*$"
)
_AND_SPLIT = re.compile(r"\s+AND\s+", re.IGNORECASE)


def _parse_literal(text: str, original: str) -> object:
    text = text.strip()
    if not text:
        raise QueryParseError(original, "empty literal")
    if (text[0] == text[-1]) and text[0] in "'\"" and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    # Bare words are string literals (model = T800).
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_\-]*", text):
        return text
    raise QueryParseError(original, f"cannot parse literal {text!r}")


def parse_query(text: str) -> Query:
    """Parse one textual query into a :class:`~repro.query.ast.Query`."""
    if not text or not text.strip():
        raise QueryParseError(text, "empty query")
    match = _QUERY.match(text)
    if not match:
        raise QueryParseError(
            text, "expected SELECT ... FROM ... [WHERE ...]"
        )

    projection_text = match.group("projection").strip()
    select: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()
    if projection_text != "*":
        parts = [p.strip() for p in projection_text.split(",")]
        if any(not p for p in parts):
            raise QueryParseError(text, "empty attribute in projection")
        agg_matches = [_AGGREGATE.match(p) for p in parts]
        if any(agg_matches):
            if not all(agg_matches):
                raise QueryParseError(
                    text, "cannot mix aggregates and plain attributes"
                )
            collected = []
            for agg in agg_matches:
                assert agg is not None
                fn = agg.group("fn").lower()
                if fn not in AGGREGATE_FNS:
                    raise QueryParseError(
                        text, f"unsupported aggregate {fn!r}"
                    )
                try:
                    collected.append(Aggregate(fn, agg.group("attr")))
                except QueryError as exc:
                    raise QueryParseError(text, str(exc)) from exc
            aggregates = tuple(collected)
        else:
            for part in parts:
                if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", part):
                    raise QueryParseError(
                        text, f"invalid projection attribute {part!r}"
                    )
            select = tuple(parts)

    target_text = match.group("target")
    if ":" not in target_text:
        raise QueryParseError(
            text,
            f"target {target_text!r} must be qualified as ontology:Term",
        )
    target = TermRef.parse(target_text)

    conditions: list[Condition] = []
    where_text = match.group("where")
    if where_text:
        for chunk in _AND_SPLIT.split(where_text):
            cond_match = _CONDITION.match(chunk)
            if not cond_match:
                raise QueryParseError(
                    text, f"cannot parse condition {chunk.strip()!r}"
                )
            op = cond_match.group("op")
            if op not in OPERATORS:  # pragma: no cover - regex guards this
                raise QueryParseError(text, f"unsupported operator {op!r}")
            conditions.append(
                Condition(
                    cond_match.group("attr"),
                    op,
                    _parse_literal(cond_match.group("value"), text),
                )
            )

    order_by: list[tuple[str, bool]] = []
    order_text = match.group("order")
    if order_text:
        for chunk in order_text.split(","):
            chunk = chunk.strip()
            descending = False
            upper = chunk.upper()
            if upper.endswith(" DESC"):
                descending = True
                chunk = chunk[: -len(" DESC")].strip()
            elif upper.endswith(" ASC"):
                chunk = chunk[: -len(" ASC")].strip()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", chunk):
                raise QueryParseError(
                    text, f"invalid ORDER BY attribute {chunk!r}"
                )
            order_by.append((chunk, descending))

    limit_text = match.group("limit")
    limit = int(limit_text) if limit_text is not None else None

    try:
        return Query(
            target,
            select,
            tuple(conditions),
            True,
            aggregates,
            tuple(order_by),
            limit,
        )
    except QueryError as exc:
        raise QueryParseError(text, str(exc)) from exc
