"""The planner: logical reformulation -> explicit physical plans.

The query path is layered (EMBANKS-style plan/execute split):

1. :mod:`repro.query.reformulate` does the *logical* work — class
   fan-out across the articulation and per-attribute conversion
   chains (one :class:`SourcePlan` per source).
2. This module turns those into a :class:`PhysicalPlan` — an
   inspectable operator tree: per-source **scan** ops carrying the
   predicates and projections pushed down to the storage backend,
   **convert** and **filter** ops for the post-fetch work, and
   **merge**/**finalize** ops describing how per-source streams become
   the final answer.
3. :mod:`repro.query.executor` evaluates the plan as iterator
   pipelines.

Plans are cached in an LRU keyed on the query text plus a fingerprint
of the articulation (bridges, conversion functions, and each source's
graph), so repeated queries skip reformulation entirely while any
articulation or ontology edit — the maintenance-under-churn scenario —
invalidates stale entries automatically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.unified import UnifiedOntology
from repro.errors import PlanningError
from repro.query.ast import Condition, Query
from repro.query.pushdown import split_conditions
from repro.query.reformulate import SourcePlan, reformulate

__all__ = [
    "ScanOp",
    "ConvertOp",
    "FilterOp",
    "MergeOp",
    "FinalizeOp",
    "SourcePipeline",
    "PhysicalPlan",
    "PlanCacheInfo",
    "Planner",
    "articulation_fingerprint",
]


# ----------------------------------------------------------------------
# physical operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanOp:
    """Fetch instances from one source's backend.

    ``pushed`` conditions are already translated into the source's own
    metric and are evaluated *at the store* (in SQL for the SQLite
    backend); ``projection`` is the attribute set the backend may
    narrow instances to (None = keep every attribute).
    """

    source: str
    classes: tuple[str, ...]
    include_subclasses: bool
    pushed: tuple[Condition, ...] = ()
    projection: tuple[str, ...] | None = None

    def describe(self) -> list[str]:
        lines = [f"scan {self.source}: classes={list(self.classes)}"]
        for condition in self.pushed:
            lines.append(f"  push {condition}")
        if self.projection is not None:
            lines.append(f"  project {list(self.projection)}")
        return lines


@dataclass(frozen=True)
class ConvertOp:
    """Normalize fetched values into the target ontology's metric."""

    source: str
    plan: SourcePlan  # owns the composed conversion chains

    def describe(self) -> list[str]:
        return [
            f"  convert {conversion.describe()}"
            for conversion in self.plan.conversions.values()
        ]


@dataclass(frozen=True)
class FilterOp:
    """Residual predicates evaluated after conversion."""

    residual: tuple[Condition, ...] = ()

    def describe(self) -> list[str]:
        return [f"  filter {condition}" for condition in self.residual]


@dataclass(frozen=True)
class SourcePipeline:
    """scan -> convert -> filter for one source, evaluated lazily."""

    scan: ScanOp
    convert: ConvertOp
    filter: FilterOp

    @property
    def source(self) -> str:
        return self.scan.source

    @property
    def logical(self) -> SourcePlan:
        return self.convert.plan


@dataclass(frozen=True)
class MergeOp:
    """Concatenate per-source streams into one deduplicated answer
    ordered by ``(source, instance_id)``; ``streaming`` means every
    input is already ordered so no sort barrier is needed."""

    streaming: bool

    def describe(self) -> str:
        mode = "streaming concat" if self.streaming else "sort"
        return f"merge: {mode} by (source, instance_id)"


@dataclass(frozen=True)
class FinalizeOp:
    """Aggregation / ORDER BY / LIMIT / final projection."""

    aggregates: tuple = ()
    order_by: tuple = ()
    limit: int | None = None
    select: tuple[str, ...] = ()

    def describe(self) -> str:
        parts = []
        if self.aggregates:
            parts.append(
                "aggregate " + ", ".join(str(a) for a in self.aggregates)
            )
        if self.order_by:
            parts.append(
                "order by "
                + ", ".join(
                    f"{attr} DESC" if desc else attr
                    for attr, desc in self.order_by
                )
            )
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.select:
            parts.append(f"select {list(self.select)}")
        return "finalize: " + ("; ".join(parts) if parts else "pass-through")


@dataclass(frozen=True)
class PhysicalPlan:
    """A fully planned query, ready for the streaming executor."""

    query: Query
    pipelines: tuple[SourcePipeline, ...]
    merge: MergeOp
    finalize: FinalizeOp
    pushdown: bool = False

    @property
    def source_plans(self) -> tuple[SourcePlan, ...]:
        """The underlying logical per-source plans (compat surface)."""
        return tuple(pipeline.logical for pipeline in self.pipelines)

    def describe(self) -> str:
        """A human-readable plan, the way the viewer would show it."""
        lines = [f"plan for: {self.query}"]
        for pipeline in self.pipelines:
            lines.extend("  " + line for line in pipeline.scan.describe())
            lines.extend("  " + line for line in pipeline.convert.describe())
            lines.extend("  " + line for line in pipeline.filter.describe())
        lines.append("  " + self.merge.describe())
        lines.append("  " + self.finalize.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# articulation fingerprinting (plan-cache invalidation)
# ----------------------------------------------------------------------
def _graph_fingerprint(ontology: Ontology) -> int:
    # Terms matter too: an edge-free term is still a valid query target.
    return hash(
        (
            ontology.name,
            frozenset(ontology.terms()),
            frozenset(
                (edge.source, edge.label, edge.target)
                for edge in ontology.graph.edges()
            ),
        )
    )


def articulation_fingerprint(articulation: Articulation) -> int:
    """A value that changes whenever replanning could change: bridge
    edges, registered conversion functions, the articulation's own
    graph, or any source ontology's graph.

    Deliberately recomputed on every plan() call — articulations are
    mutated in place with no central mutation API, so there is nothing
    safe to hang a memo off.  The cost is O(graph + rules) hashing,
    which benchmarks put an order of magnitude below reformulation; a
    future mutation-versioned Articulation could make hits O(1)."""
    return hash(
        (
            articulation.name,
            frozenset(
                (edge.source, edge.label, edge.target)
                for edge in articulation.bridges
            ),
            # Rule *identity*, not just labels: re-registering a rule
            # under the same label (a rate update, the churn scenario)
            # must invalidate cached plans.  expr_text pins textual
            # rules; id() covers opaque callables — sound only because
            # the cache pins the fingerprinted rule objects alive (see
            # plan()), so a freed id can never be reused while a key
            # derived from it is still in the cache.
            frozenset(
                (
                    label,
                    rule.expr_text,
                    rule.inverse_expr_text,
                    None if rule.expr_text is not None else id(rule.fn),
                    None
                    if rule.inverse_expr_text is not None
                    else id(rule.inverse),
                )
                for label, rule in articulation.functions.items()
            ),
            tuple(
                _graph_fingerprint(articulation.sources[name])
                for name in sorted(articulation.sources)
            ),
            _graph_fingerprint(articulation.ontology),
        )
    )


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanCacheInfo:
    hits: int
    misses: int
    size: int
    maxsize: int


class Planner:
    """Turns parsed queries into cached physical plans.

    ``pushdown`` controls whether WHERE predicates are translated into
    each source's metric and attached to the scan ops; projections are
    always pushed when the query names the attributes it needs.
    """

    def __init__(
        self,
        unified: UnifiedOntology | Articulation,
        *,
        pushdown: bool = False,
        cache_size: int = 128,
    ) -> None:
        if isinstance(unified, Articulation):
            unified = UnifiedOntology(unified)
        self.unified = unified
        self.pushdown = pushdown
        self.cache_size = cache_size
        # key -> (plan, pinned rule objects).  The lock covers every
        # dict operation: the serving tier plans from concurrent
        # request threads, and OrderedDict.move_to_end mid-resize is
        # not atomic.  Building a plan happens OUTSIDE the lock — a
        # concurrent double-build of the same key is idempotent, a
        # serialized build would convoy every reader behind it.
        self._cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -- cache plumbing -------------------------------------------------
    def cache_info(self) -> PlanCacheInfo:
        with self._cache_lock:
            return PlanCacheInfo(
                self._hits, self._misses, len(self._cache), self.cache_size
            )

    def cache_clear(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    def _cache_key(
        self, query: Query, available: frozenset[str] | None
    ) -> tuple:
        return (
            str(query),
            query.include_subclasses,
            self.pushdown,
            available,
            articulation_fingerprint(self.unified.articulation),
        )

    # -- planning -------------------------------------------------------
    def plan(
        self,
        query: Query,
        *,
        available: Iterable[str] | None = None,
    ) -> PhysicalPlan:
        """Plan ``query``; ``available`` restricts to the sources that
        actually have a registered knowledge base (None = plan for
        every bridged source, the mediator-spec use case)."""
        key_available = (
            None if available is None else frozenset(available)
        )
        key = self._cache_key(query, key_available)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return cached[0]
            self._misses += 1
        plan = self._build(query, key_available)
        # Pin the rule objects the key fingerprinted (by id) for the
        # entry's lifetime: a replaced rule then cannot be allocated at
        # a freed rule's address, so its key can never collide.
        pins = tuple(self.unified.articulation.functions.values())
        with self._cache_lock:
            self._cache[key] = (plan, pins)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return plan

    def _build(
        self, query: Query, available: frozenset[str] | None
    ) -> PhysicalPlan:
        source_plans = reformulate(query, self.unified)
        if available is not None:
            executable = [
                plan for plan in source_plans if plan.source in available
            ]
            if not executable:
                raise PlanningError(
                    "no knowledge base is registered for any of the "
                    f"sources {[p.source for p in source_plans]}"
                )
            source_plans = executable

        needed = query.attributes_needed()
        # Projection pushes whenever the query names what it reads
        # (explicit SELECT or aggregates); SELECT * keeps everything.
        if query.select or query.aggregates:
            projection: tuple[str, ...] | None = tuple(sorted(needed))
        else:
            projection = None

        pipelines = []
        for source_plan in source_plans:
            if self.pushdown:
                pushed, residual = split_conditions(query, source_plan)
            else:
                pushed, residual = (), query.where
            pipelines.append(
                SourcePipeline(
                    scan=ScanOp(
                        source=source_plan.source,
                        classes=source_plan.classes,
                        include_subclasses=query.include_subclasses,
                        pushed=pushed,
                        projection=projection,
                    ),
                    convert=ConvertOp(source_plan.source, source_plan),
                    filter=FilterOp(residual),
                )
            )
        return PhysicalPlan(
            query=query,
            pipelines=tuple(pipelines),
            # The executor downgrades to a sort at run time if any
            # wrapper turns out to be unordered.
            merge=MergeOp(streaming=not query.order_by),
            finalize=FinalizeOp(
                aggregates=query.aggregates,
                order_by=query.order_by,
                limit=query.limit,
                select=query.select,
            ),
            pushdown=self.pushdown,
        )
