"""The ONION query system: AST, parser, reformulation across bridges,
planner/executor, wrappers and answering-using-views (paper §2.3)."""

from repro.query.ast import Aggregate, Condition, Query
from repro.query.engine import (
    ExecutionPlan,
    QueryEngine,
    ResultRow,
    finalize_rows,
)
from repro.query.mediator import (
    MediatorClass,
    MediatorSpec,
    generate_mediator,
)
from repro.query.pushdown import push_condition, pushable, source_predicate
from repro.query.parser import parse_query
from repro.query.reformulate import Conversion, SourcePlan, reformulate
from repro.query.views import MaterializedView, ViewCatalog
from repro.query.wrappers import (
    CallableWrapper,
    InstanceStoreWrapper,
    SourceWrapper,
    as_wrapper,
)

__all__ = [
    "Aggregate",
    "CallableWrapper",
    "Condition",
    "Conversion",
    "ExecutionPlan",
    "InstanceStoreWrapper",
    "MaterializedView",
    "MediatorClass",
    "MediatorSpec",
    "Query",
    "QueryEngine",
    "ResultRow",
    "SourcePlan",
    "SourceWrapper",
    "ViewCatalog",
    "as_wrapper",
    "finalize_rows",
    "generate_mediator",
    "parse_query",
    "push_condition",
    "pushable",
    "reformulate",
    "source_predicate",
]
