"""The ONION query system: AST, parser, reformulation across bridges,
planner, streaming executor, wrappers and answering-using-views
(paper §2.3).

The query path is layered: ``parse -> reformulate (logical) -> plan
(physical, cached) -> execute (streaming)``, with storage backends
(:mod:`repro.kb.backends`) answering the scans at the bottom.
"""

from repro.query.ast import Aggregate, Condition, Query
from repro.query.engine import (
    ExecutionPlan,
    QueryEngine,
    ResultRow,
    finalize_rows,
)
from repro.query.executor import (
    AGGREGATE_ROW_ID,
    ExecutionStats,
    StreamingExecutor,
    project_rows,
)
from repro.query.mediator import (
    MediatorClass,
    MediatorSpec,
    generate_mediator,
)
from repro.query.planner import (
    FilterOp,
    FinalizeOp,
    MergeOp,
    PhysicalPlan,
    PlanCacheInfo,
    Planner,
    ScanOp,
    SourcePipeline,
    articulation_fingerprint,
)
from repro.query.pushdown import (
    push_condition,
    pushable,
    source_predicate,
    split_conditions,
)
from repro.query.parser import parse_query
from repro.query.reformulate import Conversion, SourcePlan, reformulate
from repro.query.views import MaterializedView, ViewCatalog
from repro.query.wrappers import (
    CallableWrapper,
    InstanceStoreWrapper,
    SourceWrapper,
    as_wrapper,
)

__all__ = [
    "AGGREGATE_ROW_ID",
    "Aggregate",
    "CallableWrapper",
    "Condition",
    "Conversion",
    "ExecutionPlan",
    "ExecutionStats",
    "FilterOp",
    "FinalizeOp",
    "InstanceStoreWrapper",
    "MaterializedView",
    "MediatorClass",
    "MediatorSpec",
    "MergeOp",
    "PhysicalPlan",
    "PlanCacheInfo",
    "Planner",
    "Query",
    "QueryEngine",
    "ResultRow",
    "ScanOp",
    "SourcePipeline",
    "SourcePlan",
    "SourceWrapper",
    "StreamingExecutor",
    "ViewCatalog",
    "articulation_fingerprint",
    "as_wrapper",
    "finalize_rows",
    "generate_mediator",
    "parse_query",
    "project_rows",
    "push_condition",
    "pushable",
    "reformulate",
    "source_predicate",
    "split_conditions",
]
