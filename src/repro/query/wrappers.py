"""Source wrappers (paper Fig. 1: every knowledge base sits behind a
wrapper the query engine talks to).

A wrapper exposes one operation — fetch instances for a set of class
terms — so the engine never depends on how a source stores its data.
:class:`InstanceStoreWrapper` adapts the in-memory store;
:class:`CallableWrapper` adapts any function (useful for synthetic or
remote-ish sources in tests and benchmarks).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.errors import QueryError
from repro.kb.instances import Instance, InstanceStore

__all__ = [
    "SourceWrapper",
    "InstanceStoreWrapper",
    "CallableWrapper",
    "as_wrapper",
]


class SourceWrapper:
    """Protocol: fetch instances of the given classes.

    ``predicate`` is an optional source-side filter (predicate
    pushdown); wrappers may apply it wherever is cheapest for their
    backing store.
    """

    name: str

    def fetch(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        predicate: Callable[[Instance], bool] | None = None,
    ) -> list[Instance]:
        raise NotImplementedError


@dataclass
class InstanceStoreWrapper(SourceWrapper):
    """Wrap an :class:`InstanceStore`; counts fetches for benchmarks."""

    store: InstanceStore
    fetch_count: int = 0
    fetched_instances: int = 0

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.store.name

    def fetch(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        predicate: Callable[[Instance], bool] | None = None,
    ) -> list[Instance]:
        self.fetch_count += 1
        rows = self.store.select(
            classes, predicate, include_subclasses=include_subclasses
        )
        self.fetched_instances += len(rows)
        return rows


@dataclass
class CallableWrapper(SourceWrapper):
    """Wrap a plain function producing instances."""

    name: str
    fn: Callable[[Sequence[str], bool], Iterable[Instance]]

    def fetch(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        predicate: Callable[[Instance], bool] | None = None,
    ) -> list[Instance]:
        rows = list(self.fn(classes, include_subclasses))
        if predicate is not None:
            rows = [row for row in rows if predicate(row)]
        return rows


def as_wrapper(source: InstanceStore | SourceWrapper) -> SourceWrapper:
    """Normalize a store-or-wrapper argument to a wrapper."""
    if isinstance(source, SourceWrapper):
        return source
    if isinstance(source, InstanceStore):
        return InstanceStoreWrapper(source)
    raise QueryError(
        f"cannot wrap source of type {type(source).__name__}; expected "
        "InstanceStore or SourceWrapper"
    )
