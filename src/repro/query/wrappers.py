"""Source wrappers (paper Fig. 1: every knowledge base sits behind a
wrapper the query engine talks to).

A wrapper exposes one streaming operation — ``scan`` instances for a
set of class terms — so the engine never depends on how a source
stores its data.  Scans carry the planner's pushdown hints through to
the storage backend: structured ``conditions`` (evaluated in SQL by
the SQLite backend), an opaque ``predicate``, and an ``attrs``
projection.  ``fetch`` remains as an eager list-returning shim for old
callers.

:class:`InstanceStoreWrapper` adapts the in-memory store;
:class:`CallableWrapper` adapts any function (useful for synthetic or
remote-ish sources in tests and benchmarks).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import QueryError
from repro.kb.backends.base import matches_conditions
from repro.kb.instances import Instance, InstanceStore

__all__ = [
    "SourceWrapper",
    "InstanceStoreWrapper",
    "CallableWrapper",
    "as_wrapper",
]


class SourceWrapper:
    """Protocol: stream instances of the given classes.

    ``conditions``/``predicate`` are optional source-side filters
    (predicate pushdown); wrappers may apply them wherever is cheapest
    for their backing store.  ``ordered`` promises scans yield unique
    instances in ascending ``instance_id`` order — the streaming
    executor's license to skip its sort barrier.
    """

    name: str
    ordered: bool = False

    def scan(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        # Pre-streaming wrappers override fetch() only: fall back to
        # it, applying the structured conditions here in Python.
        if type(self).fetch is not SourceWrapper.fetch:
            for instance in self.fetch(
                classes,
                include_subclasses=include_subclasses,
                predicate=predicate,
            ):
                if conditions and not matches_conditions(
                    instance, conditions
                ):
                    continue
                yield instance
            return
        raise NotImplementedError

    def fetch(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        predicate: Callable[[Instance], bool] | None = None,
    ) -> list[Instance]:
        """Eager compatibility shim over :meth:`scan`."""
        return list(
            self.scan(
                classes,
                include_subclasses=include_subclasses,
                predicate=predicate,
            )
        )


@dataclass
class InstanceStoreWrapper(SourceWrapper):
    """Wrap an :class:`InstanceStore`; counts fetches for benchmarks."""

    store: InstanceStore
    fetch_count: int = 0
    fetched_instances: int = 0

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.store.name

    @property
    def ordered(self) -> bool:  # type: ignore[override]
        return self.store.backend.ordered

    def scan(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        self.fetch_count += 1
        instances = self.store.scan(
            classes,
            include_subclasses=include_subclasses,
            conditions=conditions,
            predicate=predicate,
            attrs=attrs,
        )

        def counted() -> Iterator[Instance]:
            for instance in instances:
                self.fetched_instances += 1
                yield instance

        return counted()


@dataclass
class CallableWrapper(SourceWrapper):
    """Wrap a plain function producing instances.

    The function cannot push anything down, so conditions and
    predicates are applied here, after the call; scans make no
    ordering promise (``ordered`` stays False)."""

    name: str
    fn: Callable[[Sequence[str], bool], Iterable[Instance]]

    def scan(
        self,
        classes: Sequence[str],
        *,
        include_subclasses: bool = True,
        conditions: tuple = (),
        predicate: Callable[[Instance], bool] | None = None,
        attrs: frozenset[str] | None = None,
    ) -> Iterator[Instance]:
        for instance in self.fn(classes, include_subclasses):
            if conditions and not matches_conditions(instance, conditions):
                continue
            if predicate is not None and not predicate(instance):
                continue
            yield instance


def as_wrapper(source: InstanceStore | SourceWrapper) -> SourceWrapper:
    """Normalize a store-or-wrapper argument to a wrapper."""
    if isinstance(source, SourceWrapper):
        return source
    if isinstance(source, InstanceStore):
        return InstanceStoreWrapper(source)
    raise QueryError(
        f"cannot wrap source of type {type(source).__name__}; expected "
        "InstanceStore or SourceWrapper"
    )
