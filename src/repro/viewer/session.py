"""The expert's viewer session (paper §2.2).

"A domain expert initiates a session by calling into view the
ontologies of interest.  Then he can opt for a refinement of an
existing ontology using off-line information, import additional
ontologies into the system, drop an ontology from further
consideration and, most importantly, specify articulation rules.  The
alternative method is to call upon the articulation generator to
visualize possible semantic bridges based on the rule set already
available."

:class:`ExpertSession` is that workflow as a programmatic API: import/
drop ontologies, specify rules, ask SKAT for suggestions, accept or
reject them, generate, inspect, undo, and export.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import ArticulationRuleSet, Rule, parse_rule
from repro.errors import OnionError
from repro.formats.dot import articulation_to_dot, ontology_to_dot
from repro.lexicon.expert import MatchCandidate
from repro.lexicon.skat import SkatEngine
from repro.viewer.render import render_articulation, render_ontology

__all__ = ["ExpertSession"]


class ExpertSession:
    """One expert's working session over a set of source ontologies."""

    def __init__(
        self,
        *,
        articulation_name: str = "articulation",
        skat: SkatEngine | None = None,
    ) -> None:
        self.articulation_name = articulation_name
        self.skat = skat if skat is not None else SkatEngine.default()
        self.ontologies: dict[str, Ontology] = {}
        self.rules = ArticulationRuleSet()
        self.articulation: Articulation | None = None
        self._pending: list[MatchCandidate] = []

    # ------------------------------------------------------------------
    # ontology management
    # ------------------------------------------------------------------
    def import_ontology(self, ontology: Ontology) -> Ontology:
        """Bring an ontology into view."""
        if ontology.name in self.ontologies:
            raise OnionError(
                f"ontology {ontology.name!r} is already in the session"
            )
        self.ontologies[ontology.name] = ontology
        self._invalidate()
        return ontology

    def drop_ontology(self, name: str) -> Ontology:
        """Drop an ontology from further consideration."""
        ontology = self.ontologies.pop(name, None)
        if ontology is None:
            raise OnionError(f"no ontology {name!r} in the session")
        self._invalidate()
        return ontology

    def view(self, name: str) -> str:
        """Render one ontology (or the articulation) for inspection."""
        if name == self.articulation_name and self.articulation is not None:
            return render_articulation(self.articulation)
        if name in self.ontologies:
            return render_ontology(self.ontologies[name])
        raise OnionError(f"nothing named {name!r} to view")

    # ------------------------------------------------------------------
    # rules: manual entry and SKAT suggestions
    # ------------------------------------------------------------------
    def specify_rule(self, rule: Rule | str) -> Rule:
        """The expert states a rule directly."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        self.rules.add(rule)
        self._invalidate()
        return rule

    def suggest(self, o1_name: str, o2_name: str) -> list[MatchCandidate]:
        """Ask SKAT for bridge suggestions between two imported sources."""
        for name in (o1_name, o2_name):
            if name not in self.ontologies:
                raise OnionError(f"no ontology {name!r} in the session")
        self._pending = self.skat.propose(
            self.ontologies[o1_name],
            self.ontologies[o2_name],
            exclude=list(self.rules),
        )
        return list(self._pending)

    def accept(self, *candidates: MatchCandidate | int) -> int:
        """Accept pending suggestions (by object or index); returns count."""
        accepted = 0
        for item in candidates:
            candidate = (
                self._pending[item] if isinstance(item, int) else item
            )
            if self.rules.add(candidate.rule):
                accepted += 1
        self._pending = [
            c for c in self._pending if c.rule not in self.rules
        ]
        if accepted:
            self._invalidate()
        return accepted

    def reject(self, *candidates: MatchCandidate | int) -> int:
        """Discard pending suggestions."""
        to_drop = {
            (self._pending[item] if isinstance(item, int) else item).key()
            for item in candidates
        }
        before = len(self._pending)
        self._pending = [
            c for c in self._pending if c.key() not in to_drop
        ]
        return before - len(self._pending)

    def pending(self) -> list[MatchCandidate]:
        return list(self._pending)

    # ------------------------------------------------------------------
    # generation and export
    # ------------------------------------------------------------------
    def generate(self) -> Articulation:
        """Run the articulation generator over the current rule set."""
        if len(self.ontologies) < 2:
            raise OnionError(
                "need at least two imported ontologies to articulate"
            )
        generator = ArticulationGenerator(
            self.ontologies.values(), name=self.articulation_name
        )
        self.articulation = generator.generate(self.rules)
        return self.articulation

    def export_dot(self, path: str | Path) -> None:
        """Write the current picture (articulation if generated) as DOT."""
        target = Path(path)
        if self.articulation is not None:
            target.write_text(articulation_to_dot(self.articulation))
        elif len(self.ontologies) == 1:
            only = next(iter(self.ontologies.values()))
            target.write_text(ontology_to_dot(only))
        else:
            raise OnionError(
                "generate the articulation (or import exactly one "
                "ontology) before exporting"
            )

    def _invalidate(self) -> None:
        self.articulation = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExpertSession ontologies={sorted(self.ontologies)} "
            f"rules={len(self.rules)} "
            f"generated={self.articulation is not None}>"
        )
