"""ASCII rendering of ontologies and articulations (paper §2.2).

The ONION viewer is a GUI; its *semantics* — showing the expert the
class hierarchy, the bridges, and a summary of what a rule set did —
are reproduced here as plain-text renderers, suitable for terminals,
logs and docstrings.  Graphical output goes through
:mod:`repro.formats.dot`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.relations import SUBCLASS_OF

__all__ = ["render_hierarchy", "render_ontology", "render_articulation"]


def render_hierarchy(
    ontology: Ontology, *, relation: str | None = None
) -> str:
    """The ontology's hierarchy as an indented tree.

    Follows ``relation`` (default SubclassOf) downward from the roots;
    terms reachable along several paths are printed at each spot with a
    ``*`` marker after the first.
    """
    code = ontology.registry.code_for(relation or SUBCLASS_OF.name)
    lines: list[str] = [f"{ontology.name}"]
    printed: set[str] = set()

    def children(term: str) -> list[str]:
        return sorted(ontology.graph.predecessors(term, code))

    def walk(term: str, depth: int, on_path: frozenset[str]) -> None:
        marker = " *" if term in printed else ""
        lines.append("  " * depth + f"+- {term}{marker}")
        if term in printed or term in on_path:
            return
        printed.add(term)
        for child in children(term):
            walk(child, depth + 1, on_path | {term})

    for root in sorted(ontology.roots(relation)):
        walk(root, 1, frozenset())
    # Terms not reachable from any root (cycles) still deserve a line.
    for term in sorted(set(ontology.terms()) - printed):
        lines.append(f"  +- {term} (cyclic)")
        printed.add(term)
    return "\n".join(lines)


def render_ontology(ontology: Ontology) -> str:
    """A compact structural summary: counts, hierarchy, other edges."""
    graph = ontology.graph
    lines = [
        f"ontology {ontology.name}: {graph.node_count()} terms, "
        f"{graph.edge_count()} relationships",
        render_hierarchy(ontology),
    ]
    s_code = ontology.registry.code_for(SUBCLASS_OF.name)
    other = sorted(
        (e.source, e.label, e.target)
        for e in graph.edges()
        if e.label != s_code
    )
    if other:
        lines.append("other relationships:")
        for source, label, target in other:
            lines.append(f"  {source} -{label}-> {target}")
    return "\n".join(lines)


def render_articulation(articulation: Articulation) -> str:
    """What the expert reviews: terms, internal edges, bridges, rules."""
    lines = [
        f"articulation {articulation.name!r} over "
        f"{sorted(articulation.sources)}",
        f"  terms: {sorted(articulation.ontology.terms())}",
    ]
    internal = sorted(
        (e.source, e.label, e.target)
        for e in articulation.ontology.graph.edges()
    )
    if internal:
        lines.append("  internal edges:")
        for source, label, target in internal:
            lines.append(f"    {source} -{label}-> {target}")
    lines.append(f"  bridges ({len(articulation.bridges)}):")
    for edge in sorted(
        articulation.bridges, key=lambda e: (e.source, e.label, e.target)
    ):
        lines.append(f"    {edge.source} -{edge.label}-> {edge.target}")
    if articulation.functions:
        lines.append("  conversion functions:")
        for label in sorted(articulation.functions):
            rule = articulation.functions[label]
            lines.append(f"    {label}: {rule.source} -> {rule.target}")
    lines.append(f"  rules ({len(articulation.rules)}):")
    for rule in articulation.rules:
        lines.append(f"    {rule}")
    return "\n".join(lines)
