"""The ONION viewer: expert session API and text rendering (paper §2.2)."""

from repro.viewer.render import (
    render_articulation,
    render_hierarchy,
    render_ontology,
)
from repro.viewer.session import ExpertSession

__all__ = [
    "ExpertSession",
    "render_articulation",
    "render_hierarchy",
    "render_ontology",
]
