"""Incremental composition of articulations (paper §4.2, §5.2).

"With the addition of new sources, we do not need to restructure
existing ontologies or articulations but can reuse them and create a
new articulation with minimal effort."

We articulate carrier+factory into *transport*, then bring a third
source (a dealer) online by articulating it against the transport
ontology alone — and compare the graph work against re-integrating all
three sources from scratch with the global-schema baseline.

Run:  python examples/incremental_composition.py
"""

from __future__ import annotations

from repro import Ontology, compose, parse_rules
from repro.baselines import GlobalSchemaIntegrator
from repro.inference import OntologyInferenceEngine
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
)


def dealer_ontology() -> Ontology:
    dealer = Ontology("dealer")
    for term in ("Inventory", "Automobile", "UsedCar", "DemoCar",
                 "ListPrice", "Dealer"):
        dealer.add_term(term)
    dealer.add_subclass("Automobile", "Inventory")
    dealer.add_subclass("UsedCar", "Automobile")
    dealer.add_subclass("DemoCar", "Automobile")
    dealer.add_attribute("ListPrice", "Automobile")
    dealer.relate("Dealer", "sells", "Automobile")
    return dealer


def main() -> None:
    # Step 1: the existing two-source articulation.
    transport = generate_transport_articulation()
    print(f"step 1: transport articulation built, "
          f"cost={transport.cost()} graph ops, "
          f"bridges={len(transport.bridges)}")

    # Step 2: a third source arrives. Articulate it against the
    # transport ontology only — carrier and factory are not touched.
    dealer = dealer_ontology()
    market = compose(
        transport,
        dealer,
        parse_rules(
            """
            dealer:Automobile => transport:Vehicle
            dealer:UsedCar => transport:PassengerCar
            """
        ),
        name="market",
    )
    print(f"step 2: market articulation over (transport, dealer), "
          f"cost={market.cost()} graph ops, "
          f"bridges={len(market.bridges)}")

    # The composed system spans all three sources: dealer's used cars
    # are vehicles in the factory's sense, through two articulations.
    engine = OntologyInferenceEngine.from_articulation(market)
    engine.load_graph(transport.sources["carrier"].qualified_graph())
    engine.load_graph(transport.sources["factory"].qualified_graph())
    for bridge in transport.bridges:
        if bridge.label not in transport.functions:
            engine.engine.add_fact((bridge.label, bridge.source,
                                    bridge.target))
    print("dealer:UsedCar => factory:Vehicle ?",
          engine.implies("dealer:UsedCar", "factory:Vehicle"))

    # Step 3: the baseline must re-merge everything from scratch.
    baseline = GlobalSchemaIntegrator(
        [carrier_ontology(), factory_ontology(), dealer]
    )
    baseline.build()
    print(f"\nbaseline (global schema over 3 sources): "
          f"cost={baseline.total_cost} graph ops")
    print(f"incremental articulation cost for the new source: "
          f"{market.cost()} ops "
          f"({100 * market.cost() / baseline.total_cost:.0f}% of a full "
          f"re-merge)")


if __name__ == "__main__":
    main()
