"""Maintenance under source churn (paper §5.3, §6).

The carrier ontology evolves (terms added and dropped, relationships
edited).  For each edit we ask the articulation whether any bridge is
affected — using the covered-term set, the complement of the
difference operator — and compare the maintenance work against the
global-schema baseline (full re-merge per change) and the manual-view
baseline (revise every view over the source).

Run:  python examples/maintenance_under_churn.py
"""

from __future__ import annotations

from repro.baselines import GlobalSchemaIntegrator, ManualViewIntegrator
from repro.core.maintenance import ArticulationMaintainer
from repro.workloads.churn import apply_churn
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
)


def main() -> None:
    articulation = generate_transport_articulation()
    maintainer = ArticulationMaintainer(articulation)
    covered = articulation.covered_source_terms()
    print(f"articulated (covered) carrier terms: "
          f"{sorted(t for t in covered if t.startswith('carrier:'))}")

    baseline_global = GlobalSchemaIntegrator(
        [carrier_ontology(), factory_ontology()]
    )
    baseline_global.build()
    baseline_views = ManualViewIntegrator()
    baseline_views.add_source(carrier_ontology())
    baseline_views.add_source(factory_ontology())
    baseline_views.define_views("carrier")
    baseline_views.define_views("factory")

    carrier = articulation.sources["carrier"]
    report = apply_churn(carrier, n_mutations=25, seed=42)

    art_work = 0
    free_edits = 0
    for mutation in report.mutations:
        outcome = maintainer.apply_source_changes(
            "carrier", mutation.touched
        )
        if outcome.required_work:
            art_work += max(outcome.repair_ops, 1)
        else:
            free_edits += 1  # §5.3: no articulation update needed
    assert maintainer.verify() == []  # the articulation stays consistent

    global_cost = sum(
        baseline_global.maintenance_cost_for(m.touched)
        for m in report.mutations
    )
    view_cost = sum(
        baseline_views.source_changed("carrier", m.touched)
        for m in report.mutations
    )

    print(f"\n{len(report)} edits applied to carrier")
    print(f"  ONION articulation : {art_work:6d} ops "
          f"({free_edits}/{len(report)} edits needed NO work)")
    print(f"  global-schema merge: {global_cost:6d} ops "
          f"(full re-merge per edit)")
    print(f"  manual views       : {view_cost:6d} view-term revisions")


if __name__ == "__main__":
    main()
