"""Quickstart: build two tiny ontologies, articulate them, query the union.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ArticulationGenerator,
    Ontology,
    difference,
    intersection,
    parse_rules,
)
from repro.inference import OntologyInferenceEngine
from repro.viewer import render_articulation


def main() -> None:
    # 1. Two independently maintained source ontologies.
    shop = Ontology("shop")
    for term in ("Product", "Gadget", "Phone", "Price"):
        shop.add_term(term)
    shop.add_subclass("Gadget", "Product")
    shop.add_subclass("Phone", "Gadget")
    shop.add_attribute("Price", "Product")

    review = Ontology("review")
    for term in ("Item", "Device", "Smartphone", "Rating"):
        review.add_term(term)
    review.add_subclass("Device", "Item")
    review.add_subclass("Smartphone", "Device")
    review.add_attribute("Rating", "Item")

    # 2. Articulation rules bridging the semantic gap (paper §4).
    rules = parse_rules(
        """
        shop:Phone => review:Smartphone     # a shop phone is a smartphone
        shop:Gadget => review:Device
        shop:Product => review:Item
        """
    )

    # 3. Generate the articulation — the only thing physically stored.
    generator = ArticulationGenerator([shop, review], name="catalog")
    articulation = generator.generate(rules)
    print(render_articulation(articulation))
    print()

    # 4. Reason across the sources through the bridges.
    engine = OntologyInferenceEngine.from_articulation(articulation)
    print("shop:Phone => review:Item ?",
          engine.implies("shop:Phone", "review:Item"))
    print("review:Device => shop:Product ?",
          engine.implies("review:Device", "shop:Product"))

    # 5. Algebra: intersection (the shared vocabulary) and difference
    # (what each source can change without telling anyone).
    inter = intersection(shop, review, articulation)
    print("\nintersection terms:", sorted(inter.terms()))
    independent = difference(review, shop, articulation)
    print("review - shop keeps:", sorted(independent.terms()))


if __name__ == "__main__":
    main()
