"""SKAT + expert in the loop (paper §2.4).

Two bookseller ontologies use different vocabularies.  SKAT proposes
semantic bridges from exact labels, the WordNet-substitute lexicon and
graph structure; a scripted expert accepts the good ones, rejects a
false friend, and volunteers one rule SKAT cannot know.  The loop
iterates until nothing new appears.

Run:  python examples/semi_automatic_articulation.py
"""

from __future__ import annotations

from repro import Ontology, parse_rule
from repro.lexicon import (
    ExpertDecision,
    MiniWordNet,
    ScriptedPolicy,
    SkatEngine,
    articulate_with_expert,
)
from repro.viewer import render_articulation


def build_sources() -> tuple[Ontology, Ontology]:
    left = Ontology("amazonia")
    for term in ("Item", "Book", "Paperback", "Author", "Cost"):
        left.add_term(term)
    left.add_subclass("Book", "Item")
    left.add_subclass("Paperback", "Book")
    left.add_attribute("Author", "Book")
    left.add_attribute("Cost", "Item")

    right = Ontology("biblio")
    for term in ("Publication", "Volume", "Softcover", "Writer", "Price"):
        right.add_term(term)
    right.add_subclass("Volume", "Publication")
    right.add_subclass("Softcover", "Volume")
    right.add_attribute("Writer", "Volume")
    right.add_attribute("Price", "Publication")
    return left, right


def build_lexicon() -> MiniWordNet:
    """A domain lexicon the way an expert would curate one."""
    lexicon = MiniWordNet()
    lexicon.add_synset("entity", ["entity"])
    lexicon.add_synset(
        "publication", ["publication", "item"], hypernyms=["entity"]
    )
    lexicon.add_synset(
        "book", ["book", "volume"], hypernyms=["publication"]
    )
    lexicon.add_synset(
        "paperback", ["paperback", "softcover"], hypernyms=["book"]
    )
    lexicon.add_synset("author", ["author", "writer"], hypernyms=["entity"])
    lexicon.add_synset("price", ["price", "cost"], hypernyms=["entity"])
    return lexicon


def main() -> None:
    left, right = build_sources()
    skat = SkatEngine.default(build_lexicon())

    print("=== SKAT suggestions (before expert review) ===")
    for candidate in skat.propose(left, right):
        print(f"  [{candidate.score:4.2f} {candidate.matcher:10s}] "
              f"{candidate.rule}   -- {candidate.reason}")

    # The expert: reject one direction of a pairing they disagree with,
    # volunteer a rule SKAT cannot derive.
    expert = ScriptedPolicy(
        decisions={
            # block the lexicon's item~publication equivalence in the
            # dubious direction; keep the other.
            "biblio:Publication => amazonia:Item": ExpertDecision.REJECT,
        },
        default=ExpertDecision.ACCEPT,
        volunteered=(
            parse_rule("amazonia:Paperback => mediator:CheapEdition "
                       "=> biblio:Volume"),
        ),
    )

    articulation, audit = articulate_with_expert(
        left, right, expert, skat=skat, name="mediator"
    )

    print("\n=== audit trail ===")
    for review in audit:
        print(f"  {review.decision.value:7s} {review.candidate.rule}")

    print("\n=== final articulation ===")
    print(render_articulation(articulation))


if __name__ == "__main__":
    main()
