"""Querying the semantically meaningful intersection (paper §2.3, §2.6).

A buyer's application works entirely in the transport articulation's
vocabulary and the Euro.  The query engine reformulates each question
against carrier (prices in Pound Sterling) and factory (prices in
Dutch Guilders), converts values through the functional bridges, and
merges the answers.  A materialized view then accelerates the repeated
question.

Run:  python examples/query_across_sources.py
"""

from __future__ import annotations

from repro.query.engine import QueryEngine
from repro.query.views import ViewCatalog
from repro.workloads.paper_example import (
    carrier_store,
    factory_store,
    generate_transport_articulation,
)


def show(rows) -> None:
    for row in rows:
        price = row.get("price")
        shown = f"{price:10.2f}" if isinstance(price, float) else f"{price!r:>10}"
        print(f"  {row.source:8s} {row.instance_id:14s} {row.cls:13s} "
              f"price={shown}")


def main() -> None:
    articulation = generate_transport_articulation()
    engine = QueryEngine(
        articulation,
        {"carrier": carrier_store(), "factory": factory_store()},
    )

    print("=== all vehicles, prices normalized to Euro ===")
    question = "SELECT price FROM transport:Vehicle"
    print(engine.plan(question).describe())
    show(engine.execute(question))

    print("\n=== budget query: vehicles under 10 000 EUR ===")
    show(engine.execute(
        "SELECT price FROM transport:Vehicle WHERE price < 10000"
    ))

    print("\n=== trucks as the carrier sees them (prices in PS) ===")
    question = "SELECT price FROM carrier:Trucks"
    print(engine.plan(question).describe())
    show(engine.execute(question))

    print("\n=== the same budget query through a materialized view ===")
    catalog = ViewCatalog(engine)
    catalog.define("vehicles", "SELECT * FROM transport:Vehicle")
    rows = catalog.execute(
        "SELECT price FROM transport:Vehicle WHERE price < 10000"
    )
    show(rows)
    print(f"  (answered from view: hits={catalog.hits}, "
          f"misses={catalog.misses})")


if __name__ == "__main__":
    main()
