"""The paper's running example (Fig. 2), end to end.

Reproduces: the carrier and factory source ontologies, every
articulation rule of §4.1, the generated transport articulation
ontology with its semantic bridges and currency-conversion functions,
the three algebra operators of §5, and a cross-ontology query whose
prices are normalized to Euro on the way out.

Run:  python examples/transportation.py
"""

from __future__ import annotations

from repro.core.algebra import difference, intersection, union
from repro.inference import OntologyInferenceEngine
from repro.query.engine import QueryEngine
from repro.viewer import render_articulation, render_hierarchy
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
    generate_transport_articulation,
    paper_rules,
)


def main() -> None:
    carrier, factory = carrier_ontology(), factory_ontology()
    print("=== source ontologies (Fig. 2) ===")
    print(render_hierarchy(carrier))
    print()
    print(render_hierarchy(factory))

    print("\n=== articulation rules (§4.1) ===")
    for rule in paper_rules():
        print(f"  {rule}")

    articulation = generate_transport_articulation()
    print("\n=== generated articulation ===")
    print(render_articulation(articulation))

    print("\n=== ontology algebra (§5) ===")
    unified = union(carrier, factory, articulation)
    print(f"union: {unified.graph().node_count()} nodes, "
          f"{unified.graph().edge_count()} edges (virtual)")
    inter = intersection(carrier, factory, articulation)
    print(f"intersection = the transport ontology: {sorted(inter.terms())}")
    diff_cf = difference(carrier, factory, articulation)
    print(f"carrier - factory: Car removed -> "
          f"{'Car' not in set(diff_cf.terms())}")
    diff_fc = difference(factory, carrier, articulation)
    print(f"factory - carrier: Vehicle kept -> "
          f"{'Vehicle' in set(diff_fc.terms())}")

    print("\n=== inference over the unified ontology ===")
    engine = OntologyInferenceEngine.from_articulation(articulation)
    for specific, general in [
        ("carrier:Car", "factory:Vehicle"),
        ("factory:Truck", "transport:CargoCarrierVehicle"),
        ("factory:Vehicle", "transport:CarsTrucks"),
    ]:
        print(f"  {specific} => {general}: "
              f"{engine.implies(specific, general)}")
    print("  newly derived rules:",
          [str(r) for r in engine.derived_rules()][:4], "...")

    print("\n=== cross-ontology query with currency normalization ===")
    qe = QueryEngine(
        articulation,
        {"carrier": carrier_store(), "factory": factory_store()},
    )
    question = "SELECT price FROM transport:Vehicle WHERE price < 10000"
    plan = qe.plan(question)
    print(plan.describe())
    print("answers (prices in Euro):")
    for row in qe.run(plan):
        print(f"  {row.source:8s} {row.instance_id:14s} "
              f"{row.get('price'):>10.2f} EUR")


if __name__ == "__main__":
    main()
