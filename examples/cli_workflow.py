"""The ONION toolkit from the command line.

Materializes the Fig. 2 world as files (adjacency-list ontologies, a
rule file with executable currency conversions, JSON instance data)
and drives the ``onion`` CLI through a realistic session: validate,
suggest, articulate, algebra, query.

Run:  python examples/cli_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cli import main
from repro.formats import adjacency
from repro.kb.serialize import save_store
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
)

RULES = """\
# The paper's articulation rules (§4.1), with executable conversions.
carrier:Car => factory:Vehicle
carrier:Car => transport:PassengerCar => factory:Vehicle
transport:Owner => transport:Person
(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks AS CargoCarrierVehicle
factory:Vehicle => (carrier:Cars | carrier:Trucks)
PSToEuroFn(x / 0.7111 ; x * 0.7111 ; EuroToPSFn) : carrier:PoundSterling => transport:Euro
DGToEuroFn(x / 2.20371 ; x * 2.20371 ; EuroToDGFn) : factory:DutchGuilders => transport:Euro
"""


def run(label: str, argv: list[str]) -> None:
    print(f"\n$ onion {' '.join(argv)}")
    print("-" * 72)
    code = main(argv)
    print(f"[exit {code}]  # {label}")


def main_example() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        adjacency.dump(carrier_ontology(), base / "carrier.adj")
        adjacency.dump(factory_ontology(), base / "factory.adj")
        (base / "rules.txt").write_text(RULES)
        save_store(carrier_store(), base / "carrier.json")
        save_store(factory_store(), base / "factory.json")

        run("check both sources", [
            "validate", str(base / "carrier.adj"), str(base / "factory.adj"),
        ])
        run("what does SKAT see?", [
            "suggest", str(base / "carrier.adj"), str(base / "factory.adj"),
            "--min-score", "0.9",
        ])
        run("generate the transport articulation", [
            "articulate", str(base / "carrier.adj"),
            str(base / "factory.adj"),
            "--rules", str(base / "rules.txt"), "--name", "transport",
            "--dot", str(base / "transport.dot"),
        ])
        run("which carrier terms are free to change? (difference)", [
            "algebra", "difference", str(base / "carrier.adj"),
            str(base / "factory.adj"),
            "--rules", str(base / "rules.txt"), "--name", "transport",
        ])
        run("cross-source budget query (Euro)", [
            "query",
            "SELECT price FROM transport:Vehicle WHERE price < 10000 "
            "ORDER BY price",
            str(base / "carrier.adj"), str(base / "factory.adj"),
            "--rules", str(base / "rules.txt"), "--name", "transport",
            "--kb", f"carrier={base / 'carrier.json'}",
            "--kb", f"factory={base / 'factory.json'}",
            "--explain",
        ])
        run("aggregate across both sources", [
            "query",
            "SELECT COUNT(*), AVG(price) FROM transport:Vehicle",
            str(base / "carrier.adj"), str(base / "factory.adj"),
            "--rules", str(base / "rules.txt"), "--name", "transport",
            "--kb", f"carrier={base / 'carrier.json'}",
            "--kb", f"factory={base / 'factory.json'}",
        ])


if __name__ == "__main__":
    main_example()
